package guest

import (
	"sort"
	"testing"

	"paratick/internal/sim"
)

// This file holds the differential harness: a naive sorted-list reference
// model of the timer wheel's contract, and a byte-script interpreter that
// drives the real bitmap wheel and the model side by side, comparing fire
// sequences, counts, and NextExpiry after every operation. The fuzz target
// FuzzTimerWheelDifferential and the deterministic TestWheelDifferential*
// tests both run scripts through it.

// refEntry is one pending timer in the reference model.
type refEntry struct {
	id       int
	deadline sim.Time
	fireJiff int64
	seq      uint64
}

// refWheel is the reference model: a flat list consulted by linear scan and
// sorted on demand. It implements the documented TimerWheel contract — fire
// at the first jiffy boundary at or after the deadline (never at or before
// the jiffy already processed), fire in (Deadline, Add-order) order within
// a jiffy, NextExpiry is the minimum pending fire time — with none of the
// wheel's structure, so structural bugs cannot be shared.
type refWheel struct {
	jiffy   sim.Time
	maxJiff int64
	cur     int64
	seq     uint64
	entries []refEntry
}

func newRefWheel(jiffy sim.Time) *refWheel {
	return &refWheel{jiffy: jiffy, maxJiff: int64(sim.Forever / jiffy)}
}

func (r *refWheel) add(id int, deadline sim.Time) {
	fj := r.maxJiff
	if deadline <= sim.Forever-r.jiffy+1 {
		fj = int64((deadline + r.jiffy - 1) / r.jiffy)
	}
	if fj <= r.cur {
		fj = r.cur + 1
	}
	r.entries = append(r.entries, refEntry{id: id, deadline: deadline, fireJiff: fj, seq: r.seq})
	r.seq++
}

func (r *refWheel) cancel(id int) bool {
	for i, e := range r.entries {
		if e.id == id {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (r *refWheel) len() int { return len(r.entries) }

func (r *refWheel) nextExpiry() sim.Time {
	if len(r.entries) == 0 {
		return sim.Forever
	}
	best := r.maxJiff
	for _, e := range r.entries {
		if e.fireJiff < best {
			best = e.fireJiff
		}
	}
	if best >= r.maxJiff {
		return sim.Forever
	}
	return sim.Time(best) * r.jiffy
}

// advance consumes every entry due by now and returns their ids in the
// order the wheel must fire them: by jiffy, then (Deadline, Add order).
func (r *refWheel) advance(now sim.Time) []int {
	target := int64(now / r.jiffy)
	if target <= r.cur {
		return nil
	}
	r.cur = target
	var due []refEntry
	keep := r.entries[:0]
	for _, e := range r.entries {
		if e.fireJiff <= target {
			due = append(due, e)
		} else {
			keep = append(keep, e)
		}
	}
	r.entries = keep
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i], due[j]
		if a.fireJiff != b.fireJiff {
			return a.fireJiff < b.fireJiff
		}
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		return a.seq < b.seq
	})
	ids := make([]int, len(due))
	for i, e := range due {
		ids[i] = e.id
	}
	return ids
}

// diffTimer pairs a real SoftTimer with its reference identity.
type diffTimer struct {
	id int
	tm SoftTimer
}

// runDifferentialScript interprets a byte script as wheel operations and
// checks the real wheel against the reference model after every step.
// Opcodes (byte % 8): 0,1,2 add at increasing deadline scales (the largest
// crosses the top level's horizon), 3 add an edge-case deadline (past, now,
// near-Forever, Forever), 4 cancel a random timer, 5,6,7 advance at
// increasing step scales. The operand is the following byte.
func runDifferentialScript(t *testing.T, script []byte) {
	const jiffy = sim.Millisecond
	w := NewTimerWheel(jiffy)
	ref := newRefWheel(jiffy)
	var (
		timers []*diffTimer
		fired  []int
		now    sim.Time
	)
	addTimer := func(deadline sim.Time) {
		dt := &diffTimer{id: len(timers)}
		dt.tm = SoftTimer{Deadline: deadline, Fire: func(at sim.Time) {
			if at != now {
				t.Fatalf("timer %d fired with now=%v, want %v", dt.id, at, now)
			}
			fired = append(fired, dt.id)
		}}
		timers = append(timers, dt)
		w.Add(&dt.tm)
		ref.add(dt.id, deadline)
	}
	for i := 0; i+1 < len(script); i += 2 {
		op, arg := script[i]%8, int64(script[i+1])
		switch op {
		case 0: // short add: within level 0/1
			addTimer(now + sim.Time(arg+1)*jiffy)
		case 1: // medium add: spans middle levels, off jiffy boundaries
			addTimer(now + sim.Time(arg*797+13)*jiffy + sim.Time(arg%7)*jiffy/5)
		case 2: // huge add: around and beyond the top level's horizon
			addTimer(now + sim.Time(arg*65536+1)*jiffy)
		case 3: // edge-case deadlines
			switch arg % 4 {
			case 0:
				addTimer(now - sim.Time(arg)*jiffy) // at or before now
			case 1:
				addTimer(0)
			case 2:
				addTimer(sim.Forever)
			case 3:
				addTimer(sim.Forever - sim.Time(arg)) // near-Forever round-up overflow zone
			}
		case 4: // cancel a random timer (possibly already fired)
			if len(timers) == 0 {
				continue
			}
			dt := timers[int(arg)%len(timers)]
			got := w.Cancel(&dt.tm)
			want := ref.cancel(dt.id)
			if got != want {
				t.Fatalf("op %d: Cancel(%d) = %v, reference says %v", i, dt.id, got, want)
			}
		case 5: // small advance, often sub-jiffy
			now += sim.Time(arg) * jiffy / 3
		case 6: // medium advance: crosses cascade boundaries
			now += sim.Time(arg*31+1) * jiffy
		case 7: // huge advance: sparse-idle fast-forward territory
			now += sim.Time(arg*100000+1) * jiffy
		}
		if op >= 5 {
			fired = fired[:0]
			n := w.AdvanceTo(now)
			want := ref.advance(now)
			if n != len(want) {
				t.Fatalf("op %d: AdvanceTo(%v) fired %d, reference fired %d", i, now, n, len(want))
			}
			if len(fired) != len(want) {
				t.Fatalf("op %d: observed %d fires, reference %d", i, len(fired), len(want))
			}
			for j := range want {
				if fired[j] != want[j] {
					t.Fatalf("op %d: fire order %v, reference %v", i, fired, want)
				}
			}
		}
		if w.Len() != ref.len() {
			t.Fatalf("op %d: wheel Len %d, reference %d", i, w.Len(), ref.len())
		}
		if got, want := w.NextExpiry(), ref.nextExpiry(); got != want {
			t.Fatalf("op %d: NextExpiry %v, reference %v (now %v)", i, got, want, now)
		}
	}
	// Drain within the horizon and verify the survivors agree one final time.
	fired = fired[:0]
	now += sim.Time(levelReach(wheelLevels-1)+1000) * jiffy
	n := w.AdvanceTo(now)
	want := ref.advance(now)
	if n != len(want) || len(fired) != len(want) {
		t.Fatalf("drain: wheel fired %d (observed %d), reference %d", n, len(fired), len(want))
	}
	for j := range want {
		if fired[j] != want[j] {
			t.Fatalf("drain: fire order %v, reference %v", fired, want)
		}
	}
	if w.Len() != ref.len() {
		t.Fatalf("drain: wheel Len %d, reference %d", w.Len(), ref.len())
	}
}

// TestWheelDifferentialRandomOps drives the differential harness from
// seeded random scripts so the reference-model comparison runs on every
// plain `go test`, not only under fuzzing.
func TestWheelDifferentialRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := sim.NewRand(seed)
		script := make([]byte, 400)
		for i := range script {
			script[i] = byte(rng.Uint64())
		}
		runDifferentialScript(t, script)
	}
}

// TestWheelDifferentialTargeted pins the regression cases the satellites
// call out: Forever and near-Forever deadlines (round-up overflow), adds at
// or before now, same-jiffy deadline ordering, and a beyond-horizon
// deadline crossed by one huge advance.
func TestWheelDifferentialTargeted(t *testing.T) {
	scripts := map[string][]byte{
		"forever-and-past":  {3, 2, 3, 0, 3, 1, 3, 7, 6, 50, 7, 255},
		"same-jiffy-order":  {1, 9, 1, 9, 1, 9, 0, 3, 0, 3, 6, 40, 7, 200},
		"beyond-horizon":    {2, 255, 2, 128, 0, 1, 7, 255, 7, 255, 7, 255},
		"cancel-heavy":      {0, 10, 0, 20, 4, 0, 4, 0, 4, 1, 5, 90, 0, 5, 4, 3, 6, 10},
		"boundary-cascades": {1, 64, 1, 65, 1, 127, 6, 31, 6, 31, 6, 31, 6, 31},
	}
	for name, script := range scripts {
		script := script
		t.Run(name, func(t *testing.T) { runDifferentialScript(t, script) })
	}
}
