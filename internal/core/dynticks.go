package core

import "paratick/internal/sim"

// dynticksPolicy implements the standard tickless ("dynticks idle") kernel
// of Fig. 1. While tasks run, it behaves exactly like the periodic tick.
// On idle entry the tick is kept, deferred to the next RCU/soft-timer
// event, or disabled entirely (Fig. 1b); on idle exit a deferred/disabled
// tick is re-armed at the regular interval (Fig. 1c). Each defer/disable
// and each re-arm is a TSC_DEADLINE MSR write and therefore a VM exit —
// the overhead this paper attacks (§3.2).
type dynticksPolicy struct {
	// stopped records that the tick was deferred or disabled on idle entry
	// and must be restored on idle exit (the "tick deferred or disabled?"
	// checks in Figs. 1a and 1c).
	stopped bool
}

func (p *dynticksPolicy) Mode() Mode { return DynticksIdle }

func (p *dynticksPolicy) OnBoot(v GuestVCPU) {
	v.ArmTimer(v.Now() + v.TickPeriod())
}

// OnTick is Fig. 1a: perform tick work, then re-arm — unless the tick has
// been deferred or disabled by the time the handler runs (a deferred wakeup
// timer firing during idle), in which case reprogramming is skipped.
func (p *dynticksPolicy) OnTick(v GuestVCPU) {
	v.RunTickWork()
	if p.stopped {
		return
	}
	v.ArmTimer(v.Now() + v.TickPeriod())
}

// OnVirtualTick rejects virtual ticks: this guest did not negotiate
// paratick.
func (p *dynticksPolicy) OnVirtualTick(v GuestVCPU) {}

// OnIdleEnter is Fig. 1b.
func (p *dynticksPolicy) OnIdleEnter(v GuestVCPU) {
	v.AddKernelWork(0, "idle-enter-eval") // guest supplies default cost
	if v.TickRequired() {
		// A system component needs the tick: enter idle with it running.
		// When the tick is not actually armed (a deferred expiry already
		// fired during this idle period), restore it — sleeping without a
		// timer would strand the pending work. Either way the tick now
		// counts as running (stopped = false): the handler must keep
		// re-arming it every period for as long as the vCPU stays idle,
		// and idle exit has nothing to restore.
		if !v.TimerArmed() {
			v.ArmTimer(v.Now() + v.TickPeriod())
		}
		p.stopped = false
		return
	}
	next := v.NextSoftEvent()
	if next <= v.Now()+v.TickPeriod() {
		// Next event falls within the next tick period: keep the tick —
		// re-arming it at the event when a deferred expiry left it
		// disarmed. As above, a kept tick is a running tick: marking it
		// stopped here would make the next OnTick skip its re-arm and
		// strand RCU/soft-timer work on a vCPU that stays idle.
		if !v.TimerArmed() {
			v.ArmTimer(next)
		}
		p.stopped = false
		return
	}
	if next != sim.Forever {
		// Defer: reprogram the tick timer to the event's expiry.
		v.ArmTimer(next)
	} else {
		// Disable entirely.
		v.StopTimer()
	}
	p.stopped = true
}

// OnIdleExit is Fig. 1c: if the tick was deferred or disabled at idle
// entry, re-arm it at the regular interval.
func (p *dynticksPolicy) OnIdleExit(v GuestVCPU) {
	v.AddKernelWork(0, "idle-exit")
	if !p.stopped {
		return
	}
	p.stopped = false
	v.ArmTimer(v.Now() + v.TickPeriod())
}
