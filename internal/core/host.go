package core

import "paratick/internal/sim"

// HostVCPU is the hypervisor's per-vCPU view used by VM-entry hooks. It is
// implemented by internal/kvm. The LastVirtualTick accessors correspond to
// the last_tick field the paper adds to KVM's kvm_vcpu struct (§5.1).
type HostVCPU interface {
	// Now returns current simulated time.
	Now() sim.Time
	// GuestTickPeriod returns the tick period the guest declared through
	// the boot hypercall, falling back to the host period when the guest
	// declared nothing.
	GuestTickPeriod() sim.Time
	// HostTickPeriod returns the host's own scheduler-tick period.
	HostTickPeriod() sim.Time
	// HasPendingLocalTimer reports whether a local timer interrupt is
	// queued for injection at this entry.
	HasPendingLocalTimer() bool
	// InjectVirtualTick queues a vector-235 virtual tick for injection.
	InjectVirtualTick()
	// LastVirtualTick returns the time of the last (virtual or assumed)
	// tick injection for this vCPU.
	LastVirtualTick() sim.Time
	// SetLastVirtualTick records a tick injection.
	SetLastVirtualTick(t sim.Time)
	// ArmTopUpTimer programs the vCPU's preemption timer so a virtual tick
	// can be injected at the given deadline even if no host tick interrupts
	// the vCPU before then (the §4.1 frequency-mismatch mechanism).
	ArmTopUpTimer(deadline sim.Time)
}

// EntryHook is invoked by the hypervisor on every VM entry, before the
// pending-interrupt injection scan.
type EntryHook interface {
	OnVMEntry(v HostVCPU)
}

// ParatickHost is the host side of paratick (Fig. 2, §5.1), implemented as
// a VM-entry hook on the KVM run loop:
//
//	if a local timer interrupt is pending        → it will act as the tick;
//	                                               refresh last_tick
//	else if now − last_tick ≥ guest tick period  → inject a virtual tick
//	                                               (vector 235), refresh
//	                                               last_tick
//
// With TopUp enabled, the §4.1 extension is active: when the guest declared
// a tick frequency higher than the host's (so host ticks alone cannot
// deliver enough virtual ticks), the vCPU preemption timer is armed to
// force an entry at the next guest tick deadline. The paper leaves this to
// future work; it is implemented here and exercised by the ablation bench.
type ParatickHost struct {
	// TopUp enables the frequency-mismatch extension.
	TopUp bool
}

var _ EntryHook = (*ParatickHost)(nil)

// OnVMEntry applies Fig. 2 on each VM entry.
//
// One refinement over the paper's literal text ("the current time is
// recorded as the last tick"): after injecting, last_tick advances by one
// tick *period* (clamped to at most one period behind now), the
// hrtimer_forward idiom. Recording `now` instead silently drops ticks when
// entry times jitter around the period — a busy vCPU entered only by host
// ticks would receive ~35% fewer ticks than requested. The clamp preserves
// the §4.1 catch-up behaviour: a long-descheduled vCPU gets exactly one
// make-up tick, never a burst.
func (p *ParatickHost) OnVMEntry(v HostVCPU) {
	now := v.Now()
	period := v.GuestTickPeriod()
	if v.HasPendingLocalTimer() {
		// §5.1: assume the pending local timer interrupt acts as a tick —
		// it was almost certainly programmed by the guest-side paratick
		// idle-entry code, and Linux performs basic timekeeping on any
		// interrupt anyway.
		v.SetLastVirtualTick(now)
	} else if now-v.LastVirtualTick() >= period {
		v.InjectVirtualTick()
		next := v.LastVirtualTick() + period
		// Moderate lag (a few periods, from entry-time jitter) is repaid
		// gradually — one extra tick per entry — keeping the long-run rate
		// exact. A long deschedule resets the phase instead: one catch-up
		// tick, never a replayed burst.
		if now-next >= 3*period {
			next = now
		}
		v.SetLastVirtualTick(next)
	}
	if p.TopUp && period < v.HostTickPeriod() {
		v.ArmTopUpTimer(v.LastVirtualTick() + period)
	}
}
