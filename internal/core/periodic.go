package core

// periodicPolicy implements the classic fixed-rate scheduler tick (§2):
// every tick period, the deadline timer is re-armed regardless of workload.
// Idle transitions touch no timer hardware — which is exactly why periodic
// ticks waste resources on idle vCPUs (§3.1) but beat tickless kernels for
// workloads with very frequent brief idle periods (§3.3).
type periodicPolicy struct{}

func (p *periodicPolicy) Mode() Mode { return Periodic }

func (p *periodicPolicy) OnBoot(v GuestVCPU) {
	v.ArmTimer(v.Now() + v.TickPeriod())
}

func (p *periodicPolicy) OnTick(v GuestVCPU) {
	v.RunTickWork()
	v.ArmTimer(v.Now() + v.TickPeriod())
}

// OnVirtualTick rejects host-injected virtual ticks: a periodic guest has
// not negotiated paratick with the host (§5.2.1 rejects ticks arriving
// before the switch to paratick mode).
func (p *periodicPolicy) OnVirtualTick(v GuestVCPU) {}

func (p *periodicPolicy) OnIdleEnter(v GuestVCPU) {}

func (p *periodicPolicy) OnIdleExit(v GuestVCPU) {}
