package core

import "paratick/internal/sim"

// paratickPolicy implements the guest side of virtual scheduler ticks
// (Fig. 3, §5.2). The guest never programs its own scheduler tick; virtual
// ticks (vector 235) are injected by the host on VM entry. The only timer
// the guest programs is an idle wakeup timer, set on idle entry when an RCU
// event or soft timer needs servicing while the vCPU would otherwise sleep
// — and, following the paper's §5.2.5 heuristic, that timer is deliberately
// NOT disarmed on idle exit: disabling it would force a reprogram on the
// next idle entry, i.e. 2 VM exits instead of at most 1.
type paratickPolicy struct {
	opts Options
}

func (p *paratickPolicy) Mode() Mode { return Paratick }

// OnBoot is §5.2.1: install the virtual-tick vector (implicit here) and
// declare the guest tick frequency to the host through a hypercall (§4.1).
// The periodic boot tick is disabled as the switch to paratick mode is
// made: no timer is armed.
func (p *paratickPolicy) OnBoot(v GuestVCPU) {
	v.Hypercall(HypercallDeclareTickHz, int64(sim.Second/v.TickPeriod()))
	if v.TimerArmed() {
		v.StopTimer()
	}
}

// OnVirtualTick is Fig. 3a: the handler performs the same functions as the
// standard tick handler except that it never (re)arms a physical timer.
func (p *paratickPolicy) OnVirtualTick(v GuestVCPU) {
	v.RunTickWork()
}

// OnTick is Fig. 3b: the idle wakeup timer fired. If the vCPU is still
// idle, the interrupt is likely crucial (a soft timer or RCU event is due)
// and is treated as a virtual tick. If the vCPU is running normally,
// virtual ticks are already being injected, so no tick work is needed and
// the handler simply returns.
func (p *paratickPolicy) OnTick(v GuestVCPU) {
	if v.Idle() {
		v.RunTickWork()
		return
	}
	// Spurious wakeup of a busy vCPU: negligible handler cost only.
	v.AddKernelWork(0, "paratick-stale-timer")
}

// OnIdleEnter is Fig. 3c, recycling the tickless idle-entry evaluation with
// the status quo inverted: by default no timer is programmed, and the code
// decides whether one *must* be set so the vCPU is woken for the next RCU
// event or soft interrupt (§5.2.4).
func (p *paratickPolicy) OnIdleEnter(v GuestVCPU) {
	v.AddKernelWork(p.opts.IdleEnterCost, "idle-enter-eval")
	deadline := sim.Forever
	if v.TickRequired() {
		// A component needs tick-interval service: wake at the regular
		// tick interval.
		deadline = v.Now() + v.TickPeriod()
	} else {
		deadline = v.NextSoftEvent()
	}
	if deadline == sim.Forever {
		// Nothing pending: sleep until an external interrupt.
		return
	}
	// §5.2.4: only (re)program when the timer is not running or the new
	// expiry is sooner than the currently programmed one — the timer may
	// still be armed from a previous idle entry.
	if v.TimerArmed() && v.TimerDeadline() <= deadline {
		return
	}
	v.ArmTimer(deadline)
}

// OnIdleExit is Fig. 3d: no action. The wakeup timer, if armed, stays armed
// (§5.2.5) — the single stale expiry it may cause is far cheaper than the
// reprogram-on-every-idle-entry it avoids. The DisarmOnIdleExit option
// inverts this for the ablation study.
func (p *paratickPolicy) OnIdleExit(v GuestVCPU) {
	if p.opts.DisarmOnIdleExit && v.TimerArmed() {
		v.StopTimer()
	}
}
