package core

import (
	"testing"

	"paratick/internal/sim"
)

// mockHostVCPU is a scripted HostVCPU.
type mockHostVCPU struct {
	now          sim.Time
	guestPeriod  sim.Time
	hostPeriod   sim.Time
	pendingTimer bool
	lastTick     sim.Time
	injections   int
	topUps       []sim.Time
}

func newMockHostVCPU() *mockHostVCPU {
	return &mockHostVCPU{
		guestPeriod: 4 * sim.Millisecond,
		hostPeriod:  4 * sim.Millisecond,
	}
}

func (m *mockHostVCPU) Now() sim.Time                 { return m.now }
func (m *mockHostVCPU) GuestTickPeriod() sim.Time     { return m.guestPeriod }
func (m *mockHostVCPU) HostTickPeriod() sim.Time      { return m.hostPeriod }
func (m *mockHostVCPU) HasPendingLocalTimer() bool    { return m.pendingTimer }
func (m *mockHostVCPU) InjectVirtualTick()            { m.injections++ }
func (m *mockHostVCPU) LastVirtualTick() sim.Time     { return m.lastTick }
func (m *mockHostVCPU) SetLastVirtualTick(t sim.Time) { m.lastTick = t }
func (m *mockHostVCPU) ArmTopUpTimer(d sim.Time)      { m.topUps = append(m.topUps, d) }

func TestParatickHostInjectsWhenPeriodElapsed(t *testing.T) {
	v := newMockHostVCPU()
	h := &ParatickHost{}
	v.now = 5 * sim.Millisecond // > one 4ms period since lastTick=0
	h.OnVMEntry(v)
	if v.injections != 1 {
		t.Fatalf("injections = %d, want 1", v.injections)
	}
	// Drift-free advance: last_tick moves by one period (not to now), so
	// jittered entry times do not shed ticks.
	if v.lastTick != 4*sim.Millisecond {
		t.Fatalf("last_tick = %v, want 4ms (advanced by one period)", v.lastTick)
	}
}

func TestParatickHostDriftFreeRateUnderJitter(t *testing.T) {
	// Entries at period ± jitter must still deliver one tick per period on
	// average — the refinement over the paper's record-now behaviour.
	v := newMockHostVCPU()
	h := &ParatickHost{}
	rng := sim.NewRand(9)
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now += rng.Jitter(v.guestPeriod, 0.3)
		v.now = now
		h.OnVMEntry(v)
	}
	want := int(now / v.guestPeriod)
	// Allow ~2%: rare gaps beyond the catch-up horizon reset the phase.
	if v.injections < want*98/100 || v.injections > want+2 {
		t.Fatalf("injections = %d over %v, want ~%d", v.injections, now, want)
	}
}

func TestParatickHostNoInjectionWithinPeriod(t *testing.T) {
	v := newMockHostVCPU()
	h := &ParatickHost{}
	v.lastTick = 10 * sim.Millisecond
	v.now = 12 * sim.Millisecond // 2ms < 4ms period
	h.OnVMEntry(v)
	if v.injections != 0 {
		t.Fatalf("injections = %d, want 0", v.injections)
	}
	if v.lastTick != 10*sim.Millisecond {
		t.Fatal("last_tick modified without injection")
	}
}

func TestParatickHostExactPeriodBoundaryInjects(t *testing.T) {
	// Fig. 2: "time since last tick > tick period?" — we use >= so a vCPU
	// entered exactly one period later still receives its tick.
	v := newMockHostVCPU()
	h := &ParatickHost{}
	v.lastTick = 0
	v.now = v.guestPeriod
	h.OnVMEntry(v)
	if v.injections != 1 {
		t.Fatal("entry at exactly one period did not inject")
	}
}

func TestParatickHostPendingLocalTimerActsAsTick(t *testing.T) {
	// Fig. 2 / §5.1: a pending local timer interrupt will act as the tick;
	// refresh last_tick and do NOT inject a second interrupt.
	v := newMockHostVCPU()
	h := &ParatickHost{}
	v.pendingTimer = true
	v.now = 20 * sim.Millisecond // long past due
	h.OnVMEntry(v)
	if v.injections != 0 {
		t.Fatalf("injected %d virtual ticks despite pending local timer", v.injections)
	}
	if v.lastTick != v.now {
		t.Fatal("last_tick not refreshed by pending local timer")
	}
}

func TestParatickHostSteadyStateRate(t *testing.T) {
	// A vCPU continuously entered at host-tick granularity receives
	// exactly one virtual tick per guest tick period.
	v := newMockHostVCPU()
	h := &ParatickHost{}
	entries := 0
	for now := sim.Time(0); now <= sim.Second; now += v.hostPeriod {
		v.now = now
		h.OnVMEntry(v)
		entries++
	}
	// 251 entries at 4ms spacing over [0,1s]: the first entry (now=0,
	// nothing elapsed) injects nothing, then one injection per period.
	if v.injections != entries-1 {
		t.Fatalf("equal host/guest rates: %d injections over %d entries", v.injections, entries)
	}

	// With entries far more frequent than the period, injections stay at
	// the tick rate.
	v2 := newMockHostVCPU()
	entries2 := 0
	for now := sim.Time(1); now <= sim.Second; now += 100 * sim.Microsecond {
		v2.now = now
		h.OnVMEntry(v2)
		entries2++
	}
	want := int(sim.Second / v2.guestPeriod) // ~250
	if v2.injections < want-2 || v2.injections > want+2 {
		t.Fatalf("dense entries: %d injections, want ~%d (entries=%d)",
			v2.injections, want, entries2)
	}
}

func TestParatickHostTopUpDisabledByDefault(t *testing.T) {
	v := newMockHostVCPU()
	v.guestPeriod = sim.Millisecond // guest 1000 Hz, host 250 Hz
	h := &ParatickHost{}
	v.now = 5 * sim.Millisecond
	h.OnVMEntry(v)
	if len(v.topUps) != 0 {
		t.Fatal("top-up armed despite TopUp=false")
	}
}

func TestParatickHostTopUpArmsForFasterGuest(t *testing.T) {
	// §4.1 extension: guest tick faster than host tick → arm the
	// preemption timer at last_tick + guest period.
	v := newMockHostVCPU()
	v.guestPeriod = sim.Millisecond
	h := &ParatickHost{TopUp: true}
	v.now = 5 * sim.Millisecond
	h.OnVMEntry(v)
	if v.injections != 1 {
		t.Fatal("no injection on first entry")
	}
	if len(v.topUps) != 1 || v.topUps[0] != v.now+v.guestPeriod {
		t.Fatalf("topUps = %v, want [%v]", v.topUps, v.now+v.guestPeriod)
	}
}

func TestParatickHostTopUpNotArmedWhenGuestSlowerOrEqual(t *testing.T) {
	// "If the host tick frequency is a multiple of that of the guest, no
	// further actions are needed" (§4.1) — and a slower guest needs no
	// top-ups at all.
	h := &ParatickHost{TopUp: true}
	v := newMockHostVCPU() // equal periods
	v.now = 5 * sim.Millisecond
	h.OnVMEntry(v)
	if len(v.topUps) != 0 {
		t.Fatal("top-up armed for equal frequencies")
	}
	v2 := newMockHostVCPU()
	v2.guestPeriod = 8 * sim.Millisecond // guest 125 Hz < host 250 Hz
	v2.now = 9 * sim.Millisecond
	h.OnVMEntry(v2)
	if len(v2.topUps) != 0 {
		t.Fatal("top-up armed for slower guest")
	}
}

func TestParatickHostDeschedulingCatchUp(t *testing.T) {
	// §4.1: a vCPU descheduled for many periods receives one catch-up tick
	// on re-entry, not a burst.
	v := newMockHostVCPU()
	h := &ParatickHost{}
	v.now = 100 * sim.Millisecond // 25 periods elapsed
	h.OnVMEntry(v)
	if v.injections != 1 {
		t.Fatalf("catch-up injected %d ticks, want exactly 1", v.injections)
	}
	// Immediately following entry within the same period: nothing.
	v.now += 100 * sim.Microsecond
	h.OnVMEntry(v)
	if v.injections != 1 {
		t.Fatal("second injection within one period")
	}
}
