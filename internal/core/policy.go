// Package core implements the paper's primary contribution: scheduler-tick
// management policies for virtualized guests.
//
// Three policies are provided:
//
//   - Periodic: the classic fixed-rate scheduler tick (§2, §3.1).
//   - DynticksIdle: the tickless kernel of Fig. 1 — the tick is deferred or
//     disabled on idle entry and re-armed on idle exit (§2, §3.2).
//   - Paratick: virtual scheduler ticks (§4, §5) — the guest never programs
//     its own tick; the host injects virtual ticks (vector 235) on VM entry,
//     and the guest programs a wakeup timer on idle entry only when an RCU
//     event or soft timer requires it, deliberately keeping that timer armed
//     across idle exits (Fig. 3).
//
// The guest side of each policy is expressed against the GuestVCPU hook
// interface (driven by internal/guest); the host side of paratick (Fig. 2)
// is the ParatickHost entry hook (driven by internal/kvm).
package core

import (
	"fmt"

	"paratick/internal/sim"
)

// Mode identifies a tick-management policy.
type Mode int

const (
	// Periodic is the classic fixed-rate scheduler tick.
	Periodic Mode = iota
	// DynticksIdle is the standard tickless kernel ("dynticks idle" in §2),
	// the Linux default and the paper's baseline.
	DynticksIdle
	// Paratick is the paper's virtual-scheduler-tick mechanism.
	Paratick
)

// String returns the mode's short name, as used in result tables.
func (m Mode) String() string {
	switch m {
	case Periodic:
		return "periodic"
	case DynticksIdle:
		return "dynticks"
	case Paratick:
		return "paratick"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode converts a mode name ("periodic", "dynticks", "paratick") into a
// Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "periodic":
		return Periodic, nil
	case "dynticks", "tickless":
		return DynticksIdle, nil
	case "paratick":
		return Paratick, nil
	}
	return 0, fmt.Errorf("core: unknown tick mode %q (want periodic, dynticks or paratick)", s)
}

// GuestVCPU is the view a tick policy has of the guest kernel's per-vCPU
// state. It is implemented by internal/guest. Timer operations translate to
// intercepted TSC_DEADLINE MSR writes (i.e. VM exits) in the hypervisor.
type GuestVCPU interface {
	// Now returns current simulated time.
	Now() sim.Time
	// TickPeriod returns the guest's scheduler-tick period.
	TickPeriod() sim.Time
	// ArmTimer programs the per-vCPU deadline timer (an MSR write).
	ArmTimer(deadline sim.Time)
	// StopTimer disarms the timer (also an MSR write).
	StopTimer()
	// TimerArmed reports whether the deadline timer is programmed.
	TimerArmed() bool
	// TimerDeadline returns the programmed deadline, or sim.Forever.
	TimerDeadline() sim.Time
	// RunTickWork performs one scheduler tick's worth of kernel work:
	// accounting, timer-wheel advance, preemption.
	RunTickWork()
	// AddKernelWork charges d of guest-kernel CPU time (policy book-keeping
	// such as the dynticks idle-entry evaluation).
	AddKernelWork(d sim.Time, label string)
	// NextSoftEvent returns the expiry of the earliest pending soft timer or
	// RCU callback, or sim.Forever when none is pending (Fig. 1b).
	NextSoftEvent() sim.Time
	// TickRequired reports whether a system component (RCU, irq work, ...)
	// explicitly needs the tick to keep running (Fig. 1b).
	TickRequired() bool
	// Idle reports whether the vCPU is in the idle loop.
	Idle() bool
	// Hypercall issues a paravirtual call to the host (used by paratick to
	// declare the guest tick frequency at boot, §4.1).
	Hypercall(kind HypercallKind, arg int64)
}

// HypercallKind enumerates guest→host paravirtual calls.
type HypercallKind int

const (
	// HypercallDeclareTickHz declares the guest tick frequency (§4.1).
	HypercallDeclareTickHz HypercallKind = iota
)

// String names the hypercall.
func (k HypercallKind) String() string {
	if k == HypercallDeclareTickHz {
		return "declare-tick-hz"
	}
	return fmt.Sprintf("hypercall(%d)", int(k))
}

// TickPolicy is the guest-side tick-management strategy for one vCPU.
// One instance is created per vCPU; implementations carry per-vCPU state.
type TickPolicy interface {
	Mode() Mode
	// OnBoot initializes tick management when the vCPU starts.
	OnBoot(v GuestVCPU)
	// OnTick handles a physical local-timer interrupt (the vCPU's own
	// deadline timer expired).
	OnTick(v GuestVCPU)
	// OnVirtualTick handles a host-injected vector-235 virtual tick.
	OnVirtualTick(v GuestVCPU)
	// OnIdleEnter runs when the vCPU is about to enter the idle loop.
	OnIdleEnter(v GuestVCPU)
	// OnIdleExit runs when the vCPU leaves the idle loop.
	OnIdleExit(v GuestVCPU)
}

// Options tune policy behaviour for ablation studies.
type Options struct {
	// DisarmOnIdleExit disables the paper's §5.2.5 heuristic: when true,
	// paratick cancels the idle wakeup timer on idle exit (and consequently
	// must reprogram it on the next idle entry — 2 VM exits instead of ≤1).
	DisarmOnIdleExit bool
	// IdleEnterCost/IdleExitCost override the guest-kernel time charged on
	// idle transitions; zero values keep the defaults supplied by the guest.
	IdleEnterCost sim.Time
	IdleExitCost  sim.Time
}

// NewPolicy returns a fresh per-vCPU policy instance for the mode.
func NewPolicy(mode Mode, opts Options) TickPolicy {
	switch mode {
	case Periodic:
		return &periodicPolicy{}
	case DynticksIdle:
		return &dynticksPolicy{}
	case Paratick:
		return &paratickPolicy{opts: opts}
	}
	panic(fmt.Sprintf("core: unknown mode %d", int(mode)))
}
