package core

import (
	"testing"

	"paratick/internal/sim"
)

// fireTimer simulates the hardware one-shot deadline timer expiring: the
// guest-visible armed state clears (as guest.VCPU.Deliver does for the
// local-timer vector) before the policy's OnTick handler runs.
func fireTimer(t *testing.T, v *mockVCPU, p TickPolicy) {
	t.Helper()
	if !v.armed {
		t.Fatalf("at %v: timer not armed, tick-required work is stranded", v.now)
	}
	v.now = v.deadline
	v.armed = false
	v.deadline = sim.Forever
	p.OnTick(v)
}

// Regression: a vCPU that enters idle with tick-required work (RCU) and
// stays idle must keep receiving ticks every period. The old state machine
// set stopped=true after the keep-tick re-arm, so the very next OnTick
// skipped reprogramming and the pending work was stranded with no armed
// timer.
func TestDynticksTickRequiredIdleKeepsTickingAcrossPeriods(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)

	// A deferred expiry already fired during this idle period: enter idle
	// disarmed, with RCU work pending.
	v.armed = false
	v.deadline = sim.Forever
	v.idle = true
	v.tickReq = true
	p.OnIdleEnter(v)
	if !v.armed {
		t.Fatal("idle entry with tick required did not arm the tick")
	}

	// Idle through three tick periods; each expiry must run tick work and
	// re-arm for the next period.
	for cycle := 1; cycle <= 3; cycle++ {
		fireTimer(t, v, p)
		if v.tickWork != cycle {
			t.Fatalf("cycle %d: tick work ran %d times", cycle, v.tickWork)
		}
		if !v.armed {
			t.Fatalf("cycle %d: tick not re-armed while idle with tick required", cycle)
		}
		if v.deadline != v.now+v.period {
			t.Fatalf("cycle %d: re-armed at %v, want %v", cycle, v.deadline, v.now+v.period)
		}
	}

	// Idle exit with the tick running must not issue a redundant re-arm.
	arms := len(v.armCalls)
	v.idle = false
	p.OnIdleExit(v)
	if len(v.armCalls) != arms {
		t.Fatal("idle exit re-armed a tick that was never stopped")
	}
}

// Same stranding through the near-soft-event keep branch: the tick is kept
// (re-armed at the event) and must continue ticking afterwards while the
// vCPU stays idle with further events pending.
func TestDynticksNearEventIdleKeepsTickingAcrossPeriods(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)

	v.armed = false
	v.deadline = sim.Forever
	v.idle = true
	v.nextSoft = v.period / 2 // within the next tick period → keep tick
	p.OnIdleEnter(v)
	if !v.armed || v.deadline != v.period/2 {
		t.Fatalf("keep branch: armed=%v deadline=%v", v.armed, v.deadline)
	}

	// The kept tick fires at the event; there is another near event, so the
	// handler must re-arm — for ≥2 periods of continued idling.
	for cycle := 1; cycle <= 2; cycle++ {
		v.nextSoft = v.now + v.period + v.period/2
		fireTimer(t, v, p)
		if !v.armed {
			t.Fatalf("cycle %d: kept tick was not re-armed; wheel work stranded", cycle)
		}
	}
}

// The spurious-wakeup path: a deferred timer fires mid-idle, the guest
// re-evaluates idle entry, and RCU now needs the tick. The re-evaluation
// must leave the state machine ticking, not stopped.
func TestDynticksIdleReentryAfterDeferredExpiry(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)

	// First idle entry defers the tick to a far soft event.
	v.idle = true
	v.nextSoft = 10 * v.period
	p.OnIdleEnter(v)
	if v.deadline != 10*v.period {
		t.Fatalf("not deferred: deadline=%v", v.deadline)
	}

	// The deferred expiry fires; OnTick correctly skips re-arm (deferred).
	fireTimer(t, v, p)
	if v.armed {
		t.Fatal("deferred expiry must not re-arm")
	}

	// Spurious wakeup: idle entry re-evaluates with RCU pending.
	v.tickReq = true
	v.nextSoft = sim.Forever
	p.OnIdleEnter(v)
	if !v.armed {
		t.Fatal("re-evaluation did not restore the required tick")
	}

	// The restored tick must keep firing every period.
	for cycle := 0; cycle < 2; cycle++ {
		fireTimer(t, v, p)
		if !v.armed {
			t.Fatalf("cycle %d: restored tick stopped re-arming", cycle)
		}
	}
}
