package core

import "fmt"

// Checkpoint support. Policies are per-vCPU and almost stateless: their
// behaviour is a function of construction-time options plus, for dynticks,
// the single "tick deferred or disabled" bit of Figs. 1a/1c. That bit is
// exposed here as a compact state word so the guest layer can serialize a
// policy without core depending on the snapshot encoding.

// PolicyState returns the policy's mutable per-vCPU state as a word.
// Policies whose behaviour depends only on construction-time options
// return 0.
func PolicyState(p TickPolicy) uint64 {
	if d, ok := p.(*dynticksPolicy); ok && d.stopped {
		return 1
	}
	return 0
}

// SetPolicyState restores a state word produced by PolicyState into a
// freshly constructed policy of the same mode.
func SetPolicyState(p TickPolicy, s uint64) error {
	if d, ok := p.(*dynticksPolicy); ok {
		d.stopped = s&1 != 0
		return nil
	}
	if s != 0 {
		return fmt.Errorf("core: %s policy cannot carry state word %#x", p.Mode(), s)
	}
	return nil
}

// ResetPolicy returns a pooled policy instance to the exact state
// NewPolicy(p.Mode(), opts) would construct, without allocating: the whole
// struct is reassigned, so no mutable field can leak from the previous run.
// Unlike SetOptions it follows NewPolicy's (looser) contract and silently
// ignores opts for modes that take none. It reports false when p is not one
// of the known policy kinds, in which case the caller must build fresh.
//
//paratick:noalloc
func ResetPolicy(p TickPolicy, opts Options) bool {
	switch q := p.(type) {
	case *periodicPolicy:
		*q = periodicPolicy{}
	case *dynticksPolicy:
		*q = dynticksPolicy{}
	case *paratickPolicy:
		*q = paratickPolicy{opts: opts}
	default:
		return false
	}
	return true
}

// SetOptions retunes a live policy's options. Only paratick consults
// options; other modes accept only the zero Options. The experiment layer
// uses this to vary ablation knobs across forked snapshot arms without
// rebuilding the policy (which would lose its per-vCPU state).
func SetOptions(p TickPolicy, o Options) error {
	if pt, ok := p.(*paratickPolicy); ok {
		pt.opts = o
		return nil
	}
	if o != (Options{}) {
		return fmt.Errorf("core: %s policy takes no options", p.Mode())
	}
	return nil
}
