package core

import (
	"testing"

	"paratick/internal/sim"
)

// mockVCPU is a scripted GuestVCPU that records every policy action.
type mockVCPU struct {
	now        sim.Time
	period     sim.Time
	armed      bool
	deadline   sim.Time
	idle       bool
	tickReq    bool
	nextSoft   sim.Time
	armCalls   []sim.Time
	stopCalls  int
	tickWork   int
	kernelWork []string
	hypercalls []HypercallKind
}

func newMockVCPU() *mockVCPU {
	return &mockVCPU{period: 4 * sim.Millisecond, nextSoft: sim.Forever, deadline: sim.Forever}
}

func (m *mockVCPU) Now() sim.Time        { return m.now }
func (m *mockVCPU) TickPeriod() sim.Time { return m.period }
func (m *mockVCPU) TimerArmed() bool     { return m.armed }
func (m *mockVCPU) TimerDeadline() sim.Time {
	if !m.armed {
		return sim.Forever
	}
	return m.deadline
}
func (m *mockVCPU) ArmTimer(deadline sim.Time) {
	m.armed = true
	m.deadline = deadline
	m.armCalls = append(m.armCalls, deadline)
}
func (m *mockVCPU) StopTimer() {
	m.armed = false
	m.deadline = sim.Forever
	m.stopCalls++
}
func (m *mockVCPU) RunTickWork() { m.tickWork++ }
func (m *mockVCPU) AddKernelWork(d sim.Time, label string) {
	m.kernelWork = append(m.kernelWork, label)
}
func (m *mockVCPU) NextSoftEvent() sim.Time { return m.nextSoft }
func (m *mockVCPU) TickRequired() bool      { return m.tickReq }
func (m *mockVCPU) Idle() bool              { return m.idle }
func (m *mockVCPU) Hypercall(kind HypercallKind, arg int64) {
	m.hypercalls = append(m.hypercalls, kind)
}

func (m *mockVCPU) msrWrites() int { return len(m.armCalls) + m.stopCalls }

func TestModeStringsAndParse(t *testing.T) {
	for _, c := range []struct {
		m Mode
		s string
	}{{Periodic, "periodic"}, {DynticksIdle, "dynticks"}, {Paratick, "paratick"}} {
		if c.m.String() != c.s {
			t.Errorf("%d.String() = %q", int(c.m), c.m.String())
		}
		got, err := ParseMode(c.s)
		if err != nil || got != c.m {
			t.Errorf("ParseMode(%q) = %v, %v", c.s, got, err)
		}
	}
	if m, err := ParseMode("tickless"); err != nil || m != DynticksIdle {
		t.Error("'tickless' should parse as dynticks")
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode parsed")
	}
	if Mode(42).String() != "mode(42)" {
		t.Error("unknown mode string")
	}
	if HypercallDeclareTickHz.String() != "declare-tick-hz" {
		t.Error("hypercall name")
	}
	if HypercallKind(9).String() != "hypercall(9)" {
		t.Error("unknown hypercall name")
	}
}

func TestNewPolicyModes(t *testing.T) {
	for _, m := range []Mode{Periodic, DynticksIdle, Paratick} {
		p := NewPolicy(m, Options{})
		if p.Mode() != m {
			t.Errorf("NewPolicy(%v).Mode() = %v", m, p.Mode())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPolicy(unknown) did not panic")
		}
	}()
	NewPolicy(Mode(99), Options{})
}

// --- Periodic ---

func TestPeriodicBootArmsTimer(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(Periodic, Options{})
	p.OnBoot(v)
	if !v.armed || v.deadline != v.period {
		t.Fatalf("boot: armed=%v deadline=%v", v.armed, v.deadline)
	}
}

func TestPeriodicTickRearms(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(Periodic, Options{})
	p.OnBoot(v)
	v.now = v.period
	p.OnTick(v)
	if v.tickWork != 1 {
		t.Fatal("tick work not performed")
	}
	if v.deadline != 2*v.period {
		t.Fatalf("rearm deadline = %v, want %v", v.deadline, 2*v.period)
	}
}

func TestPeriodicIdleTransitionsTouchNoTimer(t *testing.T) {
	// §3.1: periodic guests keep ticking across idle; no MSR writes on
	// idle entry/exit.
	v := newMockVCPU()
	p := NewPolicy(Periodic, Options{})
	p.OnBoot(v)
	before := v.msrWrites()
	v.idle = true
	p.OnIdleEnter(v)
	v.idle = false
	p.OnIdleExit(v)
	if v.msrWrites() != before {
		t.Fatal("periodic policy touched the timer on idle transition")
	}
}

func TestPeriodicRejectsVirtualTicks(t *testing.T) {
	// §5.2.1: virtual ticks arriving outside paratick mode are rejected.
	v := newMockVCPU()
	p := NewPolicy(Periodic, Options{})
	p.OnVirtualTick(v)
	if v.tickWork != 0 {
		t.Fatal("periodic policy processed a virtual tick")
	}
}

// --- Dynticks (Fig. 1) ---

func TestDynticksTickRearms(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	v.now = v.period
	p.OnTick(v)
	if v.tickWork != 1 || v.deadline != 2*v.period {
		t.Fatalf("tick: work=%d deadline=%v", v.tickWork, v.deadline)
	}
}

func TestDynticksIdleEnterKeepsTickWhenRequired(t *testing.T) {
	// Fig. 1b: "tick explicitly needed?" → yes → enter idle, tick stays.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	v.tickReq = true
	writes := v.msrWrites()
	p.OnIdleEnter(v)
	if v.msrWrites() != writes {
		t.Fatal("tick reprogrammed despite being explicitly required")
	}
	// And idle exit must not re-arm either (tick never stopped).
	p.OnIdleExit(v)
	if v.msrWrites() != writes {
		t.Fatal("idle exit re-armed a tick that was never stopped")
	}
}

func TestDynticksIdleEnterKeepsTickForNearEvent(t *testing.T) {
	// Fig. 1b: next event within the next tick period → keep tick.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	v.nextSoft = v.period / 2
	writes := v.msrWrites()
	p.OnIdleEnter(v)
	if v.msrWrites() != writes {
		t.Fatal("tick reprogrammed for an event within the tick period")
	}
}

func TestDynticksIdleEnterDefersToSoftEvent(t *testing.T) {
	// Fig. 1b: next event beyond the tick period → defer tick to it.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	v.nextSoft = 10 * v.period
	p.OnIdleEnter(v)
	if !v.armed || v.deadline != 10*v.period {
		t.Fatalf("tick not deferred: armed=%v deadline=%v", v.armed, v.deadline)
	}
}

func TestDynticksIdleEnterDisablesWithNoEvents(t *testing.T) {
	// Fig. 1b: no pending events → disable the tick entirely.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	p.OnIdleEnter(v)
	if v.armed {
		t.Fatal("tick not disabled on idle entry with no events")
	}
	if v.stopCalls != 1 {
		t.Fatalf("stop calls = %d", v.stopCalls)
	}
}

func TestDynticksIdleExitRearms(t *testing.T) {
	// Fig. 1c: tick was disabled at idle entry → re-arm at regular interval.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	p.OnIdleEnter(v) // disables
	v.now = 3 * v.period
	p.OnIdleExit(v)
	if !v.armed || v.deadline != v.now+v.period {
		t.Fatalf("idle exit: armed=%v deadline=%v", v.armed, v.deadline)
	}
}

func TestDynticksDeferredTickDoesNotRearm(t *testing.T) {
	// Fig. 1a: handler invoked while tick deferred/disabled → skip
	// reprogramming.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	v.nextSoft = 10 * v.period
	p.OnIdleEnter(v) // deferred to 10*period
	v.now = 10 * v.period
	v.idle = true
	armsBefore := len(v.armCalls)
	p.OnTick(v)
	if v.tickWork != 1 {
		t.Fatal("deferred tick did not run tick work")
	}
	if len(v.armCalls) != armsBefore {
		t.Fatal("deferred tick handler re-armed the timer")
	}
}

func TestDynticksFullIdleCycleCostsTwoMSRWrites(t *testing.T) {
	// §3.2: each idle entry/exit pair costs 2 VM exits (one MSR write each
	// way). This is the quantity paratick eliminates.
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnBoot(v)
	base := v.msrWrites()
	p.OnIdleEnter(v)
	p.OnIdleExit(v)
	if got := v.msrWrites() - base; got != 2 {
		t.Fatalf("idle cycle MSR writes = %d, want 2", got)
	}
}

func TestDynticksRejectsVirtualTicks(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(DynticksIdle, Options{})
	p.OnVirtualTick(v)
	if v.tickWork != 0 {
		t.Fatal("dynticks processed a virtual tick")
	}
}

// --- Paratick (Fig. 3) ---

func TestParatickBootDeclaresFrequencyAndArmsNothing(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	if len(v.hypercalls) != 1 || v.hypercalls[0] != HypercallDeclareTickHz {
		t.Fatalf("hypercalls = %v", v.hypercalls)
	}
	if v.armed {
		t.Fatal("paratick armed a tick timer at boot")
	}
	if len(v.armCalls) != 0 {
		t.Fatal("paratick issued arm MSR writes at boot")
	}
}

func TestParatickBootDisablesLeftoverBootTick(t *testing.T) {
	// §5.2.1: the periodic boot tick is disabled when switching to
	// paratick mode.
	v := newMockVCPU()
	v.armed = true
	v.deadline = v.period
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	if v.armed {
		t.Fatal("boot-time periodic tick not disabled")
	}
}

func TestParatickVirtualTickRunsWorkArmsNothing(t *testing.T) {
	// Fig. 3a: same work as the standard handler, but never re-arms.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	writes := v.msrWrites()
	p.OnVirtualTick(v)
	if v.tickWork != 1 {
		t.Fatal("virtual tick did not run tick work")
	}
	if v.msrWrites() != writes {
		t.Fatal("virtual tick handler touched timer hardware")
	}
}

func TestParatickPhysicalTimerWhileIdleActsAsTick(t *testing.T) {
	// Fig. 3b: still idle when the wakeup timer fires → treat as virtual
	// tick.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	v.idle = true
	p.OnTick(v)
	if v.tickWork != 1 {
		t.Fatal("idle wakeup timer not treated as a tick")
	}
}

func TestParatickPhysicalTimerWhileBusyIsIgnored(t *testing.T) {
	// Fig. 3b: vCPU operating normally → virtual ticks are flowing; the
	// stale timer does no tick work and arms nothing.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	v.idle = false
	writes := v.msrWrites()
	p.OnTick(v)
	if v.tickWork != 0 {
		t.Fatal("stale timer performed tick work on a busy vCPU")
	}
	if v.msrWrites() != writes {
		t.Fatal("stale timer handler touched timer hardware")
	}
}

func TestParatickIdleEnterNoEventsNoTimer(t *testing.T) {
	// Fig. 3c: nothing pending → sleep with no timer at all. Zero MSR
	// writes for the whole idle cycle.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	base := v.msrWrites()
	p.OnIdleEnter(v)
	p.OnIdleExit(v)
	if got := v.msrWrites() - base; got != 0 {
		t.Fatalf("paratick idle cycle MSR writes = %d, want 0", got)
	}
}

func TestParatickIdleEnterProgramsWakeupForSoftEvent(t *testing.T) {
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	v.nextSoft = 3 * v.period
	p.OnIdleEnter(v)
	if !v.armed || v.deadline != 3*v.period {
		t.Fatalf("wakeup timer: armed=%v deadline=%v", v.armed, v.deadline)
	}
}

func TestParatickIdleEnterTickRequiredUsesTickInterval(t *testing.T) {
	// Fig. 3c via §5.2.4: if the recycled evaluation says the tick must be
	// retained, program a timer at the regular tick interval.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	v.now = 10 * sim.Millisecond
	v.tickReq = true
	p.OnIdleEnter(v)
	if !v.armed || v.deadline != v.now+v.period {
		t.Fatalf("tick-required wakeup: armed=%v deadline=%v", v.armed, v.deadline)
	}
}

func TestParatickIdleEnterReusesEarlierArmedTimer(t *testing.T) {
	// §5.2.4: the timer may still be armed from a previous idle entry; only
	// reprogram when the new deadline is sooner.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	v.nextSoft = 2 * v.period
	p.OnIdleEnter(v) // arms at 2*period
	arms := len(v.armCalls)

	p.OnIdleExit(v) // heuristic: stays armed
	v.nextSoft = 3 * v.period
	p.OnIdleEnter(v) // existing timer (2*period) is sooner: no reprogram
	if len(v.armCalls) != arms {
		t.Fatal("reprogrammed despite an earlier armed timer")
	}

	p.OnIdleExit(v)
	v.nextSoft = v.period // sooner than armed 2*period → must reprogram
	p.OnIdleEnter(v)
	if len(v.armCalls) != arms+1 || v.deadline != v.period {
		t.Fatalf("did not reprogram for sooner deadline: calls=%d deadline=%v",
			len(v.armCalls), v.deadline)
	}
}

func TestParatickIdleExitHeuristicKeepsTimer(t *testing.T) {
	// §5.2.5 / Fig. 3d: no action on idle exit; the timer stays armed.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{})
	p.OnBoot(v)
	v.nextSoft = 2 * v.period
	p.OnIdleEnter(v)
	p.OnIdleExit(v)
	if !v.armed {
		t.Fatal("idle exit disarmed the wakeup timer (heuristic violated)")
	}
	if v.stopCalls != 0 {
		t.Fatal("idle exit issued a stop MSR write")
	}
}

func TestParatickDisarmOnIdleExitAblation(t *testing.T) {
	// Ablation option: invert the §5.2.5 heuristic.
	v := newMockVCPU()
	p := NewPolicy(Paratick, Options{DisarmOnIdleExit: true})
	p.OnBoot(v)
	v.nextSoft = 2 * v.period
	p.OnIdleEnter(v)
	p.OnIdleExit(v)
	if v.armed {
		t.Fatal("ablation variant kept the timer armed")
	}
	if v.stopCalls != 1 {
		t.Fatalf("stop calls = %d, want 1", v.stopCalls)
	}
	// The next idle entry must now reprogram: 2 MSR writes per cycle, the
	// cost the heuristic avoids.
	arms := len(v.armCalls)
	p.OnIdleEnter(v)
	if len(v.armCalls) != arms+1 {
		t.Fatal("ablation variant did not reprogram on next idle entry")
	}
}

// Comparative property: over a random sequence of idle cycles with soft
// events, paratick never issues more MSR writes than dynticks — the §4.2
// guarantee at the policy level.
func TestParatickNeverMoreMSRWritesThanDynticks(t *testing.T) {
	rng := sim.NewRand(12345)
	for trial := 0; trial < 50; trial++ {
		dv, pv := newMockVCPU(), newMockVCPU()
		dp := NewPolicy(DynticksIdle, Options{})
		pp := NewPolicy(Paratick, Options{})
		dp.OnBoot(dv)
		pp.OnBoot(pv)
		pBase := pv.msrWrites() // boot arm for dynticks only
		dBase := dv.msrWrites()
		now := sim.Time(0)
		for i := 0; i < 200; i++ {
			now += rng.Between(sim.Microsecond, 10*sim.Millisecond)
			dv.now, pv.now = now, now
			soft := sim.Forever
			if rng.Bool(0.4) {
				soft = now + rng.Between(sim.Microsecond, 50*sim.Millisecond)
			}
			dv.nextSoft, pv.nextSoft = soft, soft
			req := rng.Bool(0.1)
			dv.tickReq, pv.tickReq = req, req
			dp.OnIdleEnter(dv)
			pp.OnIdleEnter(pv)
			now += rng.Between(sim.Microsecond, 5*sim.Millisecond)
			dv.now, pv.now = now, now
			dp.OnIdleExit(dv)
			pp.OnIdleExit(pv)
		}
		if pv.msrWrites()-pBase > dv.msrWrites()-dBase {
			t.Fatalf("trial %d: paratick %d MSR writes > dynticks %d",
				trial, pv.msrWrites()-pBase, dv.msrWrites()-dBase)
		}
	}
}
