// Command paratick-vet statically enforces the project's determinism and
// zero-allocation contracts. It type-checks the module from source (stdlib
// only: go/parser + go/types + go/importer) and reports every violation as
//
//	file:line:col: [RULE] message
//
// Rules: D001 wall clock in deterministic packages, D002 global math/rand,
// D003 map iteration feeding ordered sinks, D004 unsanctioned concurrency,
// D005 shard-isolation violations in lane-executed code, S001 snapshot field
// coverage, S002 Save/Load mirroring, R001 arena reset coverage, A001
// allocation-prone constructs in //paratick:noalloc functions, and U001, the
// stale-suppression audit (-unused-directives, on by default): a
// //lint:ignore, //snap:skip, or //reset:keep that no longer suppresses or
// excuses anything — or is missing its mandatory reason — is itself
// reported. See DESIGN.md "Determinism & allocation contracts" and "Type
// facts and coverage contracts" for the full law book and the justification
// syntax.
//
// Usage:
//
//	paratick-vet [-C dir] [-json] [-rules D001,D003] [-unused-directives=false] [-list] [patterns]
//
// Patterns are module-relative package paths ("./...", "./internal/sim",
// "./internal/..."); the default is "./...". Exit status is 0 when clean,
// 1 when diagnostics were reported, 2 on usage or load errors — the same
// contract as go vet, so CI can gate on it directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"paratick/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// jsonDiagnostic is the stable -json record. Fields are append-only: tools
// parsing this schema must keep working across releases.
type jsonDiagnostic struct {
	File    string `json:"file"` // module-relative, forward slashes
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the stable -json envelope.
type jsonReport struct {
	Version     int              `json:"version"`
	Count       int              `json:"count"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("paratick-vet", flag.ContinueOnError)
	fs.SetOutput(w)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (stable schema)")
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	unusedDirectives := fs.Bool("unused-directives", true, "report suppression directives that no longer suppress anything (U001)")
	list := fs.Bool("list", false, "list analyzers and exit")
	chdir := fs.String("C", "", "analyze the module containing this directory (default: current directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *rules != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(w, "paratick-vet: unknown rule %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if !*unusedDirectives {
		kept := analyzers[:0]
		for _, a := range analyzers {
			if a.Name != "U001" {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(w, "%s  %s\n", a.Name, a.Doc)
		}
		return 0
	}

	start := *chdir
	if start == "" {
		start = "."
	}
	root, err := lint.FindModuleRoot(start)
	if err != nil {
		fmt.Fprintln(w, "paratick-vet:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(w, "paratick-vet:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(w, "paratick-vet:", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, loader.ModulePath(), fs.Args())
	if err != nil {
		fmt.Fprintln(w, "paratick-vet:", err)
		return 2
	}

	cfg := lint.DefaultConfig(loader.ModulePath())
	diags := lint.RunAnalyzers(cfg, pkgs, analyzers)

	if *jsonOut {
		report := jsonReport{Version: 1, Count: len(diags), Diagnostics: []jsonDiagnostic{}}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File:    relFile(root, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(w, "paratick-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", relFile(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relFile renders a diagnostic path relative to the module root with
// forward slashes, so output and JSON are machine-independent.
func relFile(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// filterPackages keeps the packages matching the given module-relative
// patterns ("./...", "./internal/sim", "./internal/..."). No patterns, ".",
// or "./..." mean the whole module.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		matched := false
		for _, pkg := range pkgs {
			rel := strings.TrimPrefix(strings.TrimPrefix(pkg.PkgPath, modPath), "/")
			var ok bool
			switch {
			case pat == "..." || pat == "" || pat == ".":
				ok = true
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				ok = rel == prefix || strings.HasPrefix(rel, prefix+"/")
			default:
				ok = rel == pat
			}
			if ok {
				matched = true
				if !seen[pkg.PkgPath] {
					seen[pkg.PkgPath] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
