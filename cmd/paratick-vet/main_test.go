package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for hermetic driver tests and
// returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const demoGoMod = "module demo\n\ngo 1.22\n"

// dirtySim is a deterministic-package file with one wall-clock violation on
// line 6.
const dirtySim = `package sim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-list"}, &buf); code != 0 {
		t.Fatalf("run(-list) = %d, want 0\n%s", code, buf.String())
	}
	for _, rule := range []string{"D001", "D002", "D003", "D004", "D005", "S001", "S002", "R001", "A001", "U001"} {
		if !strings.Contains(buf.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, buf.String())
		}
	}
}

func TestRunDirtyModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              demoGoMod,
		"internal/sim/sim.go": dirtySim,
	})
	var buf bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &buf); code != 1 {
		t.Fatalf("run on dirty module = %d, want 1\n%s", code, buf.String())
	}
	want := "internal/sim/sim.go:6:9: [D001]"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("output missing %q:\n%s", want, buf.String())
	}
}

func TestRunCleanModuleJSONSchema(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":  demoGoMod,
		"main.go": "package main\n\nfunc main() {}\n",
	})
	var buf bytes.Buffer
	if code := run([]string{"-C", root, "-json", "./..."}, &buf); code != 0 {
		t.Fatalf("run on clean module = %d, want 0\n%s", code, buf.String())
	}
	// The empty report is part of the schema contract: version marker,
	// explicit count, and a present-but-empty diagnostics array (never
	// null), so downstream parsers need no special cases.
	want := "{\n  \"version\": 1,\n  \"count\": 0,\n  \"diagnostics\": []\n}\n"
	if buf.String() != want {
		t.Errorf("clean -json output drifted:\ngot  %q\nwant %q", buf.String(), want)
	}
}

func TestRunDirtyModuleJSONSchema(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              demoGoMod,
		"internal/sim/sim.go": dirtySim,
	})
	var buf bytes.Buffer
	if code := run([]string{"-C", root, "-json", "./..."}, &buf); code != 1 {
		t.Fatalf("run on dirty module = %d, want 1\n%s", code, buf.String())
	}
	var report struct {
		Version     int `json:"version"`
		Count       int `json:"count"`
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if report.Version != 1 {
		t.Errorf("version = %d, want 1", report.Version)
	}
	if report.Count != 1 || len(report.Diagnostics) != 1 {
		t.Fatalf("count = %d with %d diagnostics, want 1 and 1\n%s", report.Count, len(report.Diagnostics), buf.String())
	}
	d := report.Diagnostics[0]
	if d.File != "internal/sim/sim.go" || d.Line != 6 || d.Col != 9 || d.Rule != "D001" || d.Message == "" {
		t.Errorf("diagnostic drifted from schema expectations: %+v", d)
	}
}

func TestRunRuleSubsetAndErrors(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              demoGoMod,
		"internal/sim/sim.go": dirtySim,
	})
	// Restricting to an unrelated rule reports nothing.
	var buf bytes.Buffer
	if code := run([]string{"-C", root, "-rules", "D004", "./..."}, &buf); code != 0 {
		t.Fatalf("run -rules D004 = %d, want 0\n%s", code, buf.String())
	}
	// Unknown rules and unmatched patterns are usage errors (exit 2).
	buf.Reset()
	if code := run([]string{"-rules", "D999"}, &buf); code != 2 {
		t.Fatalf("run -rules D999 = %d, want 2", code)
	}
	buf.Reset()
	if code := run([]string{"-C", root, "./no/such/pkg"}, &buf); code != 2 {
		t.Fatalf("run with unmatched pattern = %d, want 2\n%s", code, buf.String())
	}
}

// staleSim carries a suppression directive that suppresses nothing: U001
// bait, on line 4.
const staleSim = `package sim

func Stamp() int64 {
	//lint:ignore D001 wall clock is sanctioned here
	return 42
}
`

// TestUnusedDirectivesFlag checks that the stale-suppression audit is on
// by default and that -unused-directives=false switches it off.
func TestUnusedDirectivesFlag(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              demoGoMod,
		"internal/sim/sim.go": staleSim,
	})
	var buf bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &buf); code != 1 {
		t.Fatalf("run on stale-directive module = %d, want 1\n%s", code, buf.String())
	}
	want := "internal/sim/sim.go:4:2: [U001]"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("output missing %q:\n%s", want, buf.String())
	}
	buf.Reset()
	if code := run([]string{"-C", root, "-unused-directives=false", "./..."}, &buf); code != 0 {
		t.Fatalf("run with -unused-directives=false = %d, want 0\n%s", code, buf.String())
	}
}

// TestRepoIsClean vets the real module: the repo's own contract that
// paratick-vet ./... stays silent. Run from this package's directory, the
// module root is discovered by walking up.
func TestRepoIsClean(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"./..."}, &buf); code != 0 {
		t.Fatalf("paratick-vet on this repository = %d, want 0:\n%s", code, buf.String())
	}
}
