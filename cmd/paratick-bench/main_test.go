package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-run", "table1", "-scale", "0.02", "-workers", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-run", "bogus"}, &b); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-device", "floppy"}, &b); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestRunManifestAndBenchJSON(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "manifest.json")
	bj := filepath.Join(dir, "bench.json")
	var b strings.Builder
	err := run([]string{"-run", "table1", "-scale", "0.02", "-workers", "2",
		"-manifest", mf, "-bench-json", bj}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Seed != 1 || m.Scale != 0.02 || m.Workers != 2 {
		t.Fatalf("manifest fields wrong: %+v", m)
	}
	if m.Runs == 0 || m.Events == 0 || m.WallNs <= 0 {
		t.Fatalf("manifest telemetry empty: %+v", m)
	}
	if m.GoVersion == "" {
		t.Fatal("manifest missing go version")
	}
	if len(m.Experiments) != 1 || m.Experiments[0].Name != "table1" {
		t.Fatalf("manifest experiments wrong: %+v", m.Experiments)
	}
	var recs []benchRecord
	if bdata, err := os.ReadFile(bj); err != nil {
		t.Fatal(err)
	} else if err := json.Unmarshal(bdata, &recs); err != nil {
		t.Fatalf("bench-json invalid: %v", err)
	}
}

// The -trace-out file must be valid Chrome JSON and byte-identical across
// worker counts — the property the CI golden check enforces.
func TestTraceOutByteStableAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	outs := make([][]byte, 0, 2)
	for i, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "trace"+workers+".json")
		var b strings.Builder
		err := run([]string{"-run", "table1", "-scale", "0.02",
			"-workers", workers, "-trace-out", path}, &b)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatalf("trace not valid JSON: %v", err)
			}
			if len(doc.TraceEvents) == 0 {
				t.Fatal("trace has no events")
			}
		}
		outs = append(outs, data)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("trace output differs between -workers 1 and -workers 4")
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	err := run([]string{"-run", "table1", "-scale", "0.02", "-workers", "1",
		"-cpuprofile", cpu, "-memprofile", mem}, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestCheckpointCLIRoundTrip drives -checkpoint-out then -checkpoint-in and
// checks the resume continues past the freeze point deterministically.
func TestCheckpointCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.snap")
	var b strings.Builder
	err := run([]string{"-scale", "0.05", "-checkpoint-at", "2ms", "-checkpoint-out", ck}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "checkpoint: froze") {
		t.Fatalf("missing freeze summary:\n%s", b.String())
	}
	resume := func() string {
		var rb strings.Builder
		if err := run([]string{"-scale", "0.05", "-checkpoint-in", ck}, &rb); err != nil {
			t.Fatal(err)
		}
		return rb.String()
	}
	first := resume()
	if !strings.Contains(first, "resumed:") {
		t.Fatalf("missing resume summary:\n%s", first)
	}
	if second := resume(); second != first {
		t.Fatalf("resume is not deterministic:\n%s\nvs\n%s", first, second)
	}
}

// TestCheckpointGoldenBytes pins the committed golden checkpoint: the
// encoding (container header, section markers, field order and widths) is
// versioned, so regenerating these exact flags must reproduce the committed
// bytes. A mismatch means the format changed — bump snap.Version and
// regenerate testdata/reference-checkpoint.snap deliberately, never silently.
func TestCheckpointGoldenBytes(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.snap")
	var b strings.Builder
	err := run([]string{"-scale", "0.05", "-checkpoint-at", "10ms", "-checkpoint-out", ck}, &b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "reference-checkpoint.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checkpoint bytes diverged from the committed golden (%d vs %d bytes): "+
			"if the snapshot encoding changed deliberately, bump the format version and regenerate testdata/reference-checkpoint.snap",
			len(got), len(want))
	}
}

// stripWallClock drops the wall-clock-dependent lines ([name] timing and the
// trailing "done in ..." summary) so outputs of two runs can be compared.
func stripWallClock(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "[") || strings.HasPrefix(line, "done in") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestShardFleetCLIByteIdentical is the CLI half of the tentpole contract:
// -run shardfleet output is byte-identical for -shards 1 and -shards 4
// (modulo wall-clock lines). The CI sharded-determinism gate diffs the same
// pair on the full-size fleet.
func TestShardFleetCLIByteIdentical(t *testing.T) {
	runFleet := func(shards string) string {
		var b strings.Builder
		err := run([]string{"-run", "shardfleet", "-scale", "0.005", "-shards", shards, "-quantum", "1ms"}, &b)
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := runFleet("1")
	if !strings.Contains(serial, "Shard fleet") {
		t.Fatalf("missing fleet report:\n%s", serial)
	}
	if sharded := runFleet("4"); stripWallClock(sharded) != stripWallClock(serial) {
		t.Fatalf("-shards 4 output diverges from -shards 1:\n%s\nvs\n%s", sharded, serial)
	}
}

// TestShardFleetCLIDefaultsQuantum checks -run shardfleet works without an
// explicit -quantum (the fleet supplies its 1ms default) and that -shards
// without -quantum is rejected for every other experiment.
func TestShardFleetCLIDefaultsQuantum(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-run", "shardfleet", "-scale", "0.005"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "quantum 1ms") {
		t.Fatalf("fleet did not default the quantum:\n%s", b.String())
	}
	if err := run([]string{"-run", "table1", "-shards", "4"}, &b); err == nil {
		t.Error("-shards without -quantum accepted")
	}
}

// TestManifestRecordsSharding pins the manifest's shard fields.
func TestManifestRecordsSharding(t *testing.T) {
	mf := filepath.Join(t.TempDir(), "manifest.json")
	var b strings.Builder
	err := run([]string{"-run", "shardfleet", "-scale", "0.005", "-shards", "2", "-quantum", "500us",
		"-manifest", mf}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Shards != 2 || m.QuantumNs != 500_000 {
		t.Fatalf("manifest shard fields wrong: shards=%d quantum_ns=%d", m.Shards, m.QuantumNs)
	}
}

// TestSnapshotProbeFlag smoke-tests -snapshot-probe: a probed run must
// succeed and render the same tables a plain run does.
func TestSnapshotProbeFlag(t *testing.T) {
	var plain, probed strings.Builder
	if err := run([]string{"-run", "table1", "-scale", "0.02", "-workers", "1"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "table1", "-scale", "0.02", "-workers", "1", "-snapshot-probe", "500us"}, &probed); err != nil {
		t.Fatal(err)
	}
	stripTiming := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "[table1]") || strings.HasPrefix(line, "done in") {
				continue // wall-clock lines differ run to run
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if stripTiming(plain.String()) != stripTiming(probed.String()) {
		t.Fatalf("probed table1 output diverges from plain run:\nplain:\n%s\nprobed:\n%s",
			plain.String(), probed.String())
	}
}
