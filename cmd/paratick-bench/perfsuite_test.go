package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paratick/internal/perf"
)

func writeBaseline(t *testing.T, results []perfSuiteResult) string {
	t.Helper()
	data, err := json.Marshal(perfSuiteReport{GoVersion: "go-test", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePerfBaseline(t *testing.T) {
	report := perfSuiteReport{Results: []perfSuiteResult{
		{Name: "wheel/add-cancel", NsPerOp: 15, AllocsPerOp: 0},
		{Name: "e2e/table1", NsPerOp: 1e6, AllocsPerOp: 100_001},
		{Name: "wheel/brand-new", NsPerOp: 9, AllocsPerOp: 0},
	}}

	t.Run("within-threshold", func(t *testing.T) {
		path := writeBaseline(t, []perfSuiteResult{
			{Name: "wheel/add-cancel", NsPerOp: 13, AllocsPerOp: 0},
			{Name: "e2e/table1", NsPerOp: 0.9e6, AllocsPerOp: 100_000},
		})
		var b strings.Builder
		if err := comparePerfBaseline(&b, report, path, 1.25); err != nil {
			t.Fatalf("comparison failed: %v\n%s", err, b.String())
		}
		if !strings.Contains(b.String(), "new kernel, no baseline") {
			t.Errorf("new kernel not noted:\n%s", b.String())
		}
	})

	t.Run("ns-regression", func(t *testing.T) {
		path := writeBaseline(t, []perfSuiteResult{
			{Name: "wheel/add-cancel", NsPerOp: 10, AllocsPerOp: 0},
			{Name: "e2e/table1", NsPerOp: 1e6, AllocsPerOp: 100_001},
		})
		var b strings.Builder
		err := comparePerfBaseline(&b, report, path, 1.25)
		if err == nil || !strings.Contains(b.String(), "wheel/add-cancel") {
			t.Fatalf("1.5x ns/op regression not caught (err=%v):\n%s", err, b.String())
		}
	})

	t.Run("alloc-regression-from-zero", func(t *testing.T) {
		path := writeBaseline(t, []perfSuiteResult{
			{Name: "wheel/add-cancel", NsPerOp: 15, AllocsPerOp: 0},
		})
		leaky := perfSuiteReport{Results: []perfSuiteResult{
			{Name: "wheel/add-cancel", NsPerOp: 15, AllocsPerOp: 1},
		}}
		var b strings.Builder
		if err := comparePerfBaseline(&b, leaky, path, 1.25); err == nil {
			t.Fatalf("0→1 allocs/op regression not caught:\n%s", b.String())
		}
	})

	t.Run("alloc-jitter-tolerated", func(t *testing.T) {
		// ±1 on a six-figure count is amortization jitter, not a regression.
		path := writeBaseline(t, []perfSuiteResult{
			{Name: "wheel/add-cancel", NsPerOp: 15, AllocsPerOp: 0},
			{Name: "e2e/table1", NsPerOp: 1e6, AllocsPerOp: 100_000},
			{Name: "wheel/brand-new", NsPerOp: 9, AllocsPerOp: 0},
		})
		var b strings.Builder
		if err := comparePerfBaseline(&b, report, path, 1.25); err != nil {
			t.Fatalf("alloc jitter flagged as regression: %v\n%s", err, b.String())
		}
	})

	t.Run("missing-kernel", func(t *testing.T) {
		path := writeBaseline(t, []perfSuiteResult{
			{Name: "wheel/add-cancel", NsPerOp: 15, AllocsPerOp: 0},
			{Name: "wheel/retired", NsPerOp: 20, AllocsPerOp: 0},
		})
		var b strings.Builder
		err := comparePerfBaseline(&b, report, path, 1.25)
		if err == nil || !strings.Contains(b.String(), "wheel/retired") {
			t.Fatalf("kernel missing from suite not caught (err=%v):\n%s", err, b.String())
		}
	})

	t.Run("bad-baseline", func(t *testing.T) {
		var b strings.Builder
		if err := comparePerfBaseline(&b, report, filepath.Join(t.TempDir(), "absent.json"), 1.25); err == nil {
			t.Fatal("missing baseline file accepted")
		}
	})
}

func TestPerfSuiteFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-perf-suite", "-perf-threshold", "0"}, &b); err == nil {
		t.Fatal("zero perf-threshold accepted")
	}
}

// TestPerfKernelsMatchCommittedBaseline pins the suite's kernel set to the
// committed BENCH_PR9.json: adding, renaming, or removing a kernel must
// regenerate the baseline in the same change.
func TestPerfKernelsMatchCommittedBaseline(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_PR9.json"))
	if err != nil {
		t.Fatal(err)
	}
	var base perfSuiteReport
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("BENCH_PR9.json invalid: %v", err)
	}
	names := map[string]bool{}
	for _, r := range base.Results {
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Errorf("baseline entry %s has empty telemetry: %+v", r.Name, r)
		}
		names[r.Name] = true
	}
	for _, k := range perf.Kernels() {
		if !names[k.Name] {
			t.Errorf("baseline missing kernel %s", k.Name)
		}
		delete(names, k.Name)
	}
	for extra := range names {
		t.Errorf("baseline has retired kernel %s", extra)
	}
}
