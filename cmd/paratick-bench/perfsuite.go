package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"

	"paratick/internal/perf"
)

// perfSuiteResult is one kernel's measurement in the -perf-out JSON.
type perfSuiteResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// perfSuiteReport is the -perf-out / -perf-baseline JSON document. The
// environment header records where the numbers came from; comparisons only
// ever run against a baseline measured on comparable hardware (CI regenerates
// its own baseline expectations via a generous threshold instead).
type perfSuiteReport struct {
	GoVersion string            `json:"go_version"`
	GOARCH    string            `json:"goarch"`
	GOOS      string            `json:"goos"`
	Results   []perfSuiteResult `json:"results"`
}

// runPerfSuite measures every pinned kernel in internal/perf with
// testing.Benchmark, prints the table, optionally writes the report JSON,
// and — when a baseline is given — fails if any kernel regressed by more
// than the threshold in ns/op or allocates more than the baseline at all.
// Each kernel's absolute allocs/op ceiling (Kernel.MaxAllocs) is enforced
// unconditionally, baseline or not.
func runPerfSuite(w io.Writer, outPath, baselinePath string, threshold float64) error {
	if threshold <= 0 {
		return fmt.Errorf("perf-threshold must be positive, got %g", threshold)
	}
	report := perfSuiteReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		GOOS:      runtime.GOOS,
	}
	fmt.Fprintln(w, "== perf suite ==")
	var ceilingFailures []string
	for _, k := range perf.Kernels() {
		r := testing.Benchmark(k.Fn)
		if r.N == 0 {
			return fmt.Errorf("kernel %s failed (benchmark aborted)", k.Name)
		}
		res := perfSuiteResult{
			Name:        k.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if eps, ok := r.Extra["events/sec"]; ok {
			res.EventsPerSec = eps
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(w, "%-28s %12.1f ns/op %8d allocs/op %8d B/op",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		if res.EventsPerSec > 0 {
			fmt.Fprintf(w, " %14.0f events/sec", res.EventsPerSec)
		}
		fmt.Fprintln(w)
		if k.MaxAllocs >= 0 && res.AllocsPerOp > k.MaxAllocs {
			ceilingFailures = append(ceilingFailures, fmt.Sprintf(
				"%s: %d allocs/op exceeds the ceiling of %d",
				res.Name, res.AllocsPerOp, k.MaxAllocs))
		}
	}
	if len(ceilingFailures) > 0 {
		for _, f := range ceilingFailures {
			fmt.Fprintln(w, "FAIL:", f)
		}
		return fmt.Errorf("perf suite exceeded %d allocation ceiling(s)", len(ceilingFailures))
	}
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", outPath)
	}
	if baselinePath != "" {
		return comparePerfBaseline(w, report, baselinePath, threshold)
	}
	return nil
}

// comparePerfBaseline checks the fresh report against a committed baseline:
// ns/op may grow by at most the threshold factor, and allocs/op by at most
// 1% — which for the zero-alloc wheel and engine kernels means any
// allocation at all fails, while the end-to-end kernel's six-figure count
// may jitter by the odd amortized allocation. Kernels added since the
// baseline pass with a note; kernels that vanished from the suite fail, so
// a rename cannot silently drop coverage.
func comparePerfBaseline(w io.Writer, report perfSuiteReport, path string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perf baseline: %w", err)
	}
	var base perfSuiteReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("perf baseline %s: %w", path, err)
	}
	baseline := make(map[string]perfSuiteResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	fmt.Fprintf(w, "-- vs baseline %s (threshold %.2fx) --\n", path, threshold)
	var failures []string
	for _, res := range report.Results {
		old, ok := baseline[res.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s new kernel, no baseline\n", res.Name)
			continue
		}
		delete(baseline, res.Name)
		ratio := res.NsPerOp / old.NsPerOp
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (%.2fx > %.2fx)",
				res.Name, res.NsPerOp, old.NsPerOp, ratio, threshold))
		}
		if res.AllocsPerOp > old.AllocsPerOp &&
			float64(res.AllocsPerOp) > float64(old.AllocsPerOp)*1.01 {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d",
				res.Name, res.AllocsPerOp, old.AllocsPerOp))
		}
		fmt.Fprintf(w, "%-28s %6.2fx ns/op, %d vs %d allocs/op: %s\n",
			res.Name, ratio, res.AllocsPerOp, old.AllocsPerOp, status)
	}
	// Baseline kernels the suite no longer covers, in sorted order so the
	// failure report is byte-stable run to run.
	missing := make([]string, 0, len(baseline))
	for name := range baseline {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		failures = append(failures, fmt.Sprintf(
			"%s: present in baseline but missing from the suite", name))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "FAIL:", f)
		}
		return fmt.Errorf("perf suite regressed on %d check(s)", len(failures))
	}
	fmt.Fprintln(w, "perf suite within baseline")
	return nil
}
