// Command paratick-bench regenerates the paper's evaluation: Table 1 and
// Figures 4–6 with their aggregate Tables 2–4, plus the ablation studies.
//
// Usage:
//
//	paratick-bench [-run all|table1|fig4|fig5|fig6|ablation] [-scale 1.0]
//	               [-seed 1] [-device nvme|sata-ssd|hdd] [-out DIR]
//
// -scale shrinks the workloads for quick runs (0.1 ≈ a tenth of the paper's
// durations). -out additionally writes each table as CSV into DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"paratick/internal/experiment"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, table1, fig4, fig5, fig6, crossover, consolidation, ablation")
	scale := flag.Float64("scale", 1.0, "workload duration scale (1.0 = paper-sized)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	device := flag.String("device", "nvme", "block device profile: nvme, sata-ssd, hdd")
	repeats := flag.Int("repeats", 1, "average each experiment over this many seeds (paper: 3-15)")
	out := flag.String("out", "", "directory for CSV output (optional)")
	flag.Parse()

	opts := experiment.DefaultOptions()
	opts.Seed = *seed
	opts.Scale = *scale
	opts.Repeats = *repeats
	switch *device {
	case "nvme":
		opts.Device = iodev.NVMe()
	case "sata-ssd":
		opts.Device = iodev.SataSSD()
	case "hdd":
		opts.Device = iodev.HDD()
	default:
		fatal(fmt.Errorf("unknown device %q", *device))
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	all := *run == "all"
	start := time.Now()
	if all || *run == "table1" {
		runTable1(opts, *out)
	}
	if all || *run == "fig4" {
		runFig4(opts, *out)
	}
	if all || *run == "fig5" {
		runFig5(opts, *out)
	}
	if all || *run == "fig6" {
		runFig6(opts, *out)
	}
	if all || *run == "crossover" {
		runCrossover(opts, *out)
	}
	if all || *run == "consolidation" {
		runConsolidation(opts)
	}
	if all || *run == "ablation" {
		runAblation(opts)
	}
	switch *run {
	case "all", "table1", "fig4", "fig5", "fig6", "crossover", "consolidation", "ablation":
	default:
		fatal(fmt.Errorf("unknown experiment %q", *run))
	}
	fmt.Printf("done in %v (scale %.2f, seed %d)\n", time.Since(start).Round(time.Millisecond), *scale, *seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paratick-bench:", err)
	os.Exit(1)
}

func writeCSV(dir, name string, t *metrics.Table) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}

func runTable1(opts experiment.Options, out string) {
	fmt.Println("== Table 1: hypothetical workloads (analytic + simulated) ==")
	res, err := experiment.RunTable1(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Render())
}

func runFig4(opts experiment.Options, out string) {
	fmt.Println("== Figure 4 + Table 2: sequential PARSEC ==")
	fig, err := experiment.RunFig4(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(fig.Render())
	fmt.Println(fig.Table().String())
	fmt.Println(experiment.RenderTable2(fig).String())
	writeCSV(out, "fig4", fig.Table())
	writeCSV(out, "table2", experiment.RenderTable2(fig))
}

func runFig5(opts experiment.Options, out string) {
	fmt.Println("== Figure 5 + Table 3: multithreaded PARSEC ==")
	figs, err := experiment.RunFig5(opts)
	if err != nil {
		fatal(err)
	}
	for i, fig := range figs {
		fmt.Println(fig.Render())
		writeCSV(out, fmt.Sprintf("fig5-%s", experiment.VMSizes()[i].Name), fig.Table())
	}
	fmt.Println(experiment.RenderTable3(figs).String())
	writeCSV(out, "table3", experiment.RenderTable3(figs))
}

func runFig6(opts experiment.Options, out string) {
	fmt.Println("== Figure 6 + Table 4: phoronix-fio ==")
	fig, err := experiment.RunFig6(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(fig.Render())
	fmt.Println(fig.Table().String())
	fmt.Println(experiment.RenderTable4(fig).String())
	writeCSV(out, "fig6", fig.Table())
	writeCSV(out, "table4", experiment.RenderTable4(fig))
}

func runCrossover(opts experiment.Options, out string) {
	fmt.Println("== §3.3 crossover sweep: to tick or not to tick ==")
	res, err := experiment.RunCrossover(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Render())
	writeCSV(out, "crossover", res.Table())
}

func runConsolidation(opts experiment.Options) {
	fmt.Println("== §3.1 consolidation: mixed fleet, 2:1 overcommit ==")
	res, err := experiment.RunConsolidation(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Render())
}

func runAblation(opts experiment.Options) {
	fmt.Println("== Ablations ==")
	s, err := experiment.RunAllAblations(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(s)
}
