// Command paratick-bench regenerates the paper's evaluation: Table 1 and
// Figures 4–6 with their aggregate Tables 2–4, plus the ablation studies.
//
// Usage:
//
//	paratick-bench [-run all|table1|fig4|fig5|fig6|ablation] [-scale 1.0]
//	               [-seed 1] [-device nvme|sata-ssd|hdd] [-out DIR]
//	               [-workers N] [-bench-json FILE]
//
// -scale shrinks the workloads for quick runs (0.1 ≈ a tenth of the paper's
// durations). -out additionally writes each table as CSV into DIR. -workers
// fans independent simulation runs across N goroutines (0 = one per CPU);
// output is byte-identical regardless of worker count. -bench-json writes
// one timing record per experiment (wall clock, events fired, events/sec).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"paratick/internal/experiment"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, table1, fig4, fig5, fig6, crossover, consolidation, ablation")
	scale := flag.Float64("scale", 1.0, "workload duration scale (1.0 = paper-sized)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	device := flag.String("device", "nvme", "block device profile: nvme, sata-ssd, hdd")
	repeats := flag.Int("repeats", 1, "average each experiment over this many seeds (paper: 3-15)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	out := flag.String("out", "", "directory for CSV output (optional)")
	benchJSON := flag.String("bench-json", "", "file for per-experiment timing records as JSON (optional)")
	flag.Parse()

	opts := experiment.DefaultOptions()
	opts.Seed = *seed
	opts.Scale = *scale
	opts.Repeats = *repeats
	opts.Workers = *workers
	switch *device {
	case "nvme":
		opts.Device = iodev.NVMe()
	case "sata-ssd":
		opts.Device = iodev.SataSSD()
	case "hdd":
		opts.Device = iodev.HDD()
	default:
		fatal(fmt.Errorf("unknown device %q", *device))
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	b := &bench{opts: opts, out: *out}
	all := *run == "all"
	start := time.Now()
	if all || *run == "table1" {
		b.measure("table1", runTable1)
	}
	if all || *run == "fig4" {
		b.measure("fig4", runFig4)
	}
	if all || *run == "fig5" {
		b.measure("fig5", runFig5)
	}
	if all || *run == "fig6" {
		b.measure("fig6", runFig6)
	}
	if all || *run == "crossover" {
		b.measure("crossover", runCrossover)
	}
	if all || *run == "consolidation" {
		b.measure("consolidation", runConsolidation)
	}
	if all || *run == "ablation" {
		b.measure("ablation", runAblation)
	}
	switch *run {
	case "all", "table1", "fig4", "fig5", "fig6", "crossover", "consolidation", "ablation":
	default:
		fatal(fmt.Errorf("unknown experiment %q", *run))
	}
	if *benchJSON != "" {
		if err := b.writeJSON(*benchJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	fmt.Printf("done in %v (scale %.2f, seed %d, workers %d)\n",
		time.Since(start).Round(time.Millisecond), *scale, *seed, b.opts.WorkerCount())
}

// benchRecord is one experiment's timing entry for -bench-json.
type benchRecord struct {
	Name         string  `json:"name"`
	WallNs       int64   `json:"wall_ns"`
	Runs         uint64  `json:"runs"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Workers      int     `json:"workers"`
}

// bench runs experiments with a fresh Meter each, recording wall-clock and
// engine throughput per experiment.
type bench struct {
	opts    experiment.Options
	out     string
	records []benchRecord
}

func (b *bench) measure(name string, fn func(experiment.Options, string)) {
	opts := b.opts
	m := &metrics.Meter{}
	opts.Meter = m
	start := time.Now()
	fn(opts, b.out)
	wall := time.Since(start)
	rec := benchRecord{
		Name:         name,
		WallNs:       wall.Nanoseconds(),
		Runs:         m.Runs(),
		Events:       m.Events(),
		EventsPerSec: m.EventsPerSec(wall.Seconds()),
		Workers:      b.opts.WorkerCount(),
	}
	b.records = append(b.records, rec)
	fmt.Printf("[%s] %v wall, %d runs, %d events, %.0f events/sec\n\n",
		name, wall.Round(time.Millisecond), rec.Runs, rec.Events, rec.EventsPerSec)
}

func (b *bench) writeJSON(path string) error {
	data, err := json.MarshalIndent(b.records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paratick-bench:", err)
	os.Exit(1)
}

func writeCSV(dir, name string, t *metrics.Table) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}

func runTable1(opts experiment.Options, out string) {
	fmt.Println("== Table 1: hypothetical workloads (analytic + simulated) ==")
	res, err := experiment.RunTable1(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Render())
}

func runFig4(opts experiment.Options, out string) {
	fmt.Println("== Figure 4 + Table 2: sequential PARSEC ==")
	fig, err := experiment.RunFig4(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(fig.Render())
	fmt.Println(fig.Table().String())
	fmt.Println(experiment.RenderTable2(fig).String())
	writeCSV(out, "fig4", fig.Table())
	writeCSV(out, "table2", experiment.RenderTable2(fig))
}

func runFig5(opts experiment.Options, out string) {
	fmt.Println("== Figure 5 + Table 3: multithreaded PARSEC ==")
	figs, err := experiment.RunFig5(opts)
	if err != nil {
		fatal(err)
	}
	for i, fig := range figs {
		fmt.Println(fig.Render())
		writeCSV(out, fmt.Sprintf("fig5-%s", experiment.VMSizes()[i].Name), fig.Table())
	}
	fmt.Println(experiment.RenderTable3(figs).String())
	writeCSV(out, "table3", experiment.RenderTable3(figs))
}

func runFig6(opts experiment.Options, out string) {
	fmt.Println("== Figure 6 + Table 4: phoronix-fio ==")
	fig, err := experiment.RunFig6(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(fig.Render())
	fmt.Println(fig.Table().String())
	fmt.Println(experiment.RenderTable4(fig).String())
	writeCSV(out, "fig6", fig.Table())
	writeCSV(out, "table4", experiment.RenderTable4(fig))
}

func runCrossover(opts experiment.Options, out string) {
	fmt.Println("== §3.3 crossover sweep: to tick or not to tick ==")
	res, err := experiment.RunCrossover(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Render())
	writeCSV(out, "crossover", res.Table())
}

func runConsolidation(opts experiment.Options, out string) {
	fmt.Println("== §3.1 consolidation: mixed fleet, 2:1 overcommit ==")
	res, err := experiment.RunConsolidation(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Render())
}

func runAblation(opts experiment.Options, out string) {
	fmt.Println("== Ablations ==")
	s, err := experiment.RunAllAblations(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(s)
}
