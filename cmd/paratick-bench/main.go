// Command paratick-bench regenerates the paper's evaluation: Table 1 and
// Figures 4–6 with their aggregate Tables 2–4, plus the ablation studies.
//
// Usage:
//
//	paratick-bench [-run all|table1|fig4|fig5|fig6|crossover|consolidation|
//	                overcommit|ablation|shardfleet] [-scale 1.0] [-sched fifo|fair]
//	               [-seed 1] [-device nvme|sata-ssd|hdd] [-out DIR]
//	               [-workers N] [-shards N] [-quantum D] [-no-arena]
//	               [-bench-json FILE] [-manifest FILE]
//	               [-trace-out FILE.json] [-cpuprofile FILE] [-memprofile FILE]
//	paratick-bench -perf-suite [-perf-out FILE.json] [-perf-baseline FILE.json]
//	               [-perf-threshold 1.25]
//	paratick-bench -checkpoint-out FILE [-checkpoint-at 10ms]
//	paratick-bench -checkpoint-in FILE
//
// -scale shrinks the workloads for quick runs (0.1 ≈ a tenth of the paper's
// durations). -out additionally writes each table as CSV into DIR. -workers
// fans independent simulation runs across N goroutines (0 = one per CPU);
// output is byte-identical regardless of worker count. -no-arena disables
// the host/VM arena pooling that recycles worlds across a worker's runs —
// pooling is execution-only, so output is byte-identical either way (the CI
// arena differential diffs both). -bench-json writes one timing record per
// experiment (wall clock, events fired, events/sec).
//
// Intra-run sharding:
//
//   - -quantum D switches scenarios into lane mode: one event shard per
//     socket, coordinated by a conservative time-quantum barrier of width D.
//     Lane mode is a semantic switch — it changes the modeled schedule (and
//     requires every VM to fit inside one socket) — so its output differs
//     from the serial default, but depends only on (seed, scale, quantum).
//   - -shards N runs the lanes on up to N goroutines. Sharding is execution
//     only: any -shards value produces byte-identical output, which the CI
//     sharded-determinism gate enforces by diffing -shards 1 against
//     -shards 4.
//   - -run shardfleet runs the canonical lane-mode workload: a fleet of
//     socket-contained VMs coupled by a cross-socket IPI ring (it defaults
//     -quantum to 1ms when unset).
//
// -perf-suite runs the pinned micro-benchmark kernels of internal/perf
// (timer wheel, event engine, one end-to-end experiment) via
// testing.Benchmark and prints ns/op, allocs/op, and events/sec. -perf-out
// writes the machine-readable report; -perf-baseline compares against a
// committed report (BENCH_PR9.json) and fails when any kernel's ns/op grows
// past -perf-threshold or its allocs/op grows at all.
//
// Checkpointing:
//
//   - -checkpoint-out runs the reference scenario's warmup to -checkpoint-at
//     (simulated time) and freezes the complete simulator state into FILE.
//     The bytes are deterministic: the same flags always produce the same
//     file, regardless of -workers or host parallelism.
//   - -checkpoint-in restores FILE into a rebuilt reference scenario and runs
//     it to completion, printing the same totals a straight run reports. The
//     run-shaping flags (-scale, -seed, -device, -sched) must match the
//     checkpointing invocation; a structurally different scenario is refused.
//   - -snapshot-probe T enables the mid-run differential gate inside every
//     experiment run: at simulated instant T the state is snapshotted,
//     restored into a fresh world, verified to re-serialize byte-identically,
//     and the run continues on the restored copy — so the rendered output
//     proves restore correctness end to end.
//
// Observability extras:
//
//   - -trace-out runs a fixed-seed reference scenario with tracing enabled
//     and writes a Chrome trace-event JSON file loadable in Perfetto
//     (ui.perfetto.dev). The scenario is a single serial simulation, so the
//     file is byte-identical for any -workers value.
//   - -manifest writes a JSON run manifest: seed, scale, workers, device,
//     git version, wall clock, and aggregate events/sec.
//   - -cpuprofile / -memprofile write pprof profiles of the bench process.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"paratick"
	"paratick/internal/experiment"
	"paratick/internal/iodev"
	"paratick/internal/metrics"
	"paratick/internal/sched"
	"paratick/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paratick-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paratick-bench", flag.ContinueOnError)
	runSel := fs.String("run", "all", "experiment to run: all, table1, fig4, fig5, fig6, crossover, consolidation, overcommit, ablation, shardfleet")
	scale := fs.Float64("scale", 1.0, "workload duration scale (1.0 = paper-sized)")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	device := fs.String("device", "nvme", "block device profile: nvme, sata-ssd, hdd")
	repeats := fs.Int("repeats", 1, "average each experiment over this many seeds (paper: 3-15)")
	workers := fs.Int("workers", 0, "parallel simulation workers (0 = one per CPU)")
	shards := fs.Int("shards", 0, "intra-run event shards per scenario; >1 requires -quantum (output is byte-identical for any value)")
	quantum := fs.Duration("quantum", 0, "lane-mode barrier quantum (0 = serial legacy engine)")
	schedPolicy := fs.String("sched", "fifo", "host vCPU scheduler for the experiments: fifo, fair (the overcommit sweep always compares both)")
	out := fs.String("out", "", "directory for CSV output (optional)")
	benchJSON := fs.String("bench-json", "", "file for per-experiment timing records as JSON (optional)")
	manifestPath := fs.String("manifest", "", "file for the run-manifest JSON (optional)")
	traceOut := fs.String("trace-out", "", "file for a Chrome trace-event JSON of the reference scenario (optional)")
	cpuProfile := fs.String("cpuprofile", "", "file for a pprof CPU profile (optional)")
	memProfile := fs.String("memprofile", "", "file for a pprof heap profile (optional)")
	perfSuite := fs.Bool("perf-suite", false, "run the pinned micro-benchmark suite (internal/perf) instead of the experiments")
	perfOut := fs.String("perf-out", "", "file for the perf-suite report JSON (optional)")
	perfBaseline := fs.String("perf-baseline", "", "baseline report JSON to compare against; regressions beyond -perf-threshold fail (optional)")
	perfThreshold := fs.Float64("perf-threshold", 1.25, "max tolerated ns/op ratio vs the perf baseline")
	ckOut := fs.String("checkpoint-out", "", "freeze the reference scenario at -checkpoint-at into this file instead of running experiments")
	ckIn := fs.String("checkpoint-in", "", "restore a checkpoint file into the reference scenario and run it to completion instead of running experiments")
	ckAt := fs.Duration("checkpoint-at", 10*time.Millisecond, "simulated freeze instant for -checkpoint-out")
	probeAt := fs.Duration("snapshot-probe", 0, "simulated instant for the mid-run snapshot round-trip gate inside every experiment (0 = off)")
	noArena := fs.Bool("no-arena", false, "disable host/VM arena pooling and build every world fresh (output is byte-identical either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *perfSuite {
		return runPerfSuite(w, *perfOut, *perfBaseline, *perfThreshold)
	}

	opts := experiment.DefaultOptions()
	opts.Seed = *seed
	opts.Scale = *scale
	opts.Repeats = *repeats
	opts.Workers = *workers
	pol, err := sched.Parse(*schedPolicy)
	if err != nil {
		return err
	}
	opts.SchedPolicy = pol
	switch *device {
	case "nvme":
		opts.Device = iodev.NVMe()
	case "sata-ssd":
		opts.Device = iodev.SataSSD()
	case "hdd":
		opts.Device = iodev.HDD()
	default:
		return fmt.Errorf("unknown device %q", *device)
	}
	opts.SnapshotProbe = sim.Time(probeAt.Nanoseconds())
	opts.NoArena = *noArena
	// Shards>1 without a quantum is rejected by each experiment's own
	// Validate — except shardfleet, which first defaults the quantum.
	opts.Shards = *shards
	opts.Quantum = sim.Time(quantum.Nanoseconds())
	if *ckOut != "" || *ckIn != "" {
		return runCheckpoint(w, opts, *ckOut, *ckIn, sim.Time(ckAt.Nanoseconds()))
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	b := &bench{opts: opts, out: *out, w: w}
	all := *runSel == "all"
	start := time.Now()
	steps := []struct {
		name string
		fn   func(experiment.Options, string, io.Writer) error
	}{
		{"table1", runTable1},
		{"fig4", runFig4},
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"crossover", runCrossover},
		{"consolidation", runConsolidation},
		{"overcommit", runOvercommit},
		{"ablation", runAblation},
		{"shardfleet", runShardFleet},
	}
	known := all
	for _, s := range steps {
		if s.name == *runSel {
			known = true
		}
		if all || *runSel == s.name {
			if err := b.measure(s.name, s.fn); err != nil {
				return err
			}
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q", *runSel)
	}
	wall := time.Since(start)

	if *traceOut != "" {
		if err := writeReferenceTrace(*traceOut, *seed); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *traceOut)
	}
	if *benchJSON != "" {
		if err := b.writeJSON(*benchJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *benchJSON)
	}
	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, opts, *device, wall, b.records); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *manifestPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "done in %v (scale %.2f, seed %d, workers %d)\n",
		wall.Round(time.Millisecond), *scale, *seed, b.opts.WorkerCount())
	return nil
}

// runCheckpoint drives -checkpoint-out / -checkpoint-in on the reference
// scenario: freeze the warmed-up simulator state into a file, or restore a
// frozen state and run it to completion. The checkpoint bytes depend only on
// the run-shaping flags, never on -workers, so a committed checkpoint doubles
// as a golden file for the encoding.
func runCheckpoint(w io.Writer, opts experiment.Options, outPath, inPath string, at sim.Time) error {
	s := experiment.ReferenceScenario(opts)
	if outPath != "" {
		ck, err := experiment.CheckpointScenario(s, opts.Seed, at)
		if err != nil {
			return err
		}
		data := ck.Bytes()
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint: froze %q at %v after %d events (%d bytes) into %s\n",
			s.Name, ck.At(), ck.Events(), len(data), outPath)
	}
	if inPath != "" {
		data, err := os.ReadFile(inPath)
		if err != nil {
			return err
		}
		ck, err := experiment.LoadCheckpoint(data)
		if err != nil {
			return err
		}
		res, err := experiment.ResumeScenario(s, ck)
		if err != nil {
			return err
		}
		c := &res.Results[0].Counters
		fmt.Fprintf(w, "resumed: %q from %v (seed %d): %d events total, %d VM exits (%d timer-related)\n",
			s.Name, ck.At(), ck.Seed(), res.Events, c.TotalExits(), c.TimerExits())
	}
	return nil
}

// writeReferenceTrace runs the fixed reference scenario — one paratick VM on
// a small fio workload, tracing on — and exports it as Chrome trace JSON.
// The run is a single serial simulation, so the bytes depend only on the
// seed, never on -workers or host parallelism.
func writeReferenceTrace(path string, seed uint64) error {
	workload, err := paratick.ParseWorkloadSpec("fio:rndr:4:4", 0)
	if err != nil {
		return err
	}
	rep, err := paratick.Run(paratick.Scenario{
		Mode:          paratick.ModeParatick,
		VCPUs:         2,
		Seed:          seed,
		Workload:      workload,
		TraceCapacity: 1 << 16,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Trace.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// manifest is the -manifest run record: enough to reproduce and rate the run.
type manifest struct {
	Seed         uint64        `json:"seed"`
	Scale        float64       `json:"scale"`
	Workers      int           `json:"workers"`
	Shards       int           `json:"shards"`
	QuantumNs    int64         `json:"quantum_ns"`
	Repeats      int           `json:"repeats"`
	Device       string        `json:"device"`
	GitVersion   string        `json:"git_version,omitempty"`
	GoVersion    string        `json:"go_version"`
	WallNs       int64         `json:"wall_ns"`
	Runs         uint64        `json:"runs"`
	Events       uint64        `json:"events"`
	EventsPerSec float64       `json:"events_per_sec"`
	Experiments  []benchRecord `json:"experiments"`
}

func writeManifest(path string, opts experiment.Options, device string, wall time.Duration, records []benchRecord) error {
	m := manifest{
		Seed:        opts.Seed,
		Scale:       opts.Scale,
		Workers:     opts.WorkerCount(),
		Shards:      opts.Shards,
		QuantumNs:   int64(opts.Quantum),
		Repeats:     opts.Repeats,
		Device:      device,
		GitVersion:  gitDescribe(),
		GoVersion:   runtime.Version(),
		WallNs:      wall.Nanoseconds(),
		Experiments: records,
	}
	for _, r := range records {
		m.Runs += r.Runs
		m.Events += r.Events
	}
	if secs := wall.Seconds(); secs > 0 {
		m.EventsPerSec = float64(m.Events) / secs
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gitDescribe returns a best-effort source version; "" outside a git
// checkout or without git installed.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchRecord is one experiment's timing entry for -bench-json.
type benchRecord struct {
	Name         string  `json:"name"`
	WallNs       int64   `json:"wall_ns"`
	Runs         uint64  `json:"runs"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Workers      int     `json:"workers"`
}

// bench runs experiments with a fresh Meter each, recording wall-clock and
// engine throughput per experiment.
type bench struct {
	opts    experiment.Options
	out     string
	w       io.Writer
	records []benchRecord
}

func (b *bench) measure(name string, fn func(experiment.Options, string, io.Writer) error) error {
	opts := b.opts
	m := &metrics.Meter{}
	opts.Meter = m
	start := time.Now()
	if err := fn(opts, b.out, b.w); err != nil {
		return err
	}
	wall := time.Since(start)
	rec := benchRecord{
		Name:         name,
		WallNs:       wall.Nanoseconds(),
		Runs:         m.Runs(),
		Events:       m.Events(),
		EventsPerSec: m.EventsPerSec(wall.Seconds()),
		Workers:      b.opts.WorkerCount(),
	}
	b.records = append(b.records, rec)
	fmt.Fprintf(b.w, "[%s] %v wall, %d runs, %d events, %.0f events/sec\n\n",
		name, wall.Round(time.Millisecond), rec.Runs, rec.Events, rec.EventsPerSec)
	return nil
}

func (b *bench) writeJSON(path string) error {
	data, err := json.MarshalIndent(b.records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeCSV(dir, name string, t *metrics.Table, w io.Writer) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "  wrote %s\n", path)
	return nil
}

func runTable1(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Table 1: hypothetical workloads (analytic + simulated) ==")
	res, err := experiment.RunTable1(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Render())
	return nil
}

func runFig4(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Figure 4 + Table 2: sequential PARSEC ==")
	fig, err := experiment.RunFig4(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, fig.Render())
	fmt.Fprintln(w, fig.Table().String())
	fmt.Fprintln(w, experiment.RenderTable2(fig).String())
	if err := writeCSV(out, "fig4", fig.Table(), w); err != nil {
		return err
	}
	return writeCSV(out, "table2", experiment.RenderTable2(fig), w)
}

func runFig5(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Figure 5 + Table 3: multithreaded PARSEC ==")
	figs, err := experiment.RunFig5(opts)
	if err != nil {
		return err
	}
	for i, fig := range figs {
		fmt.Fprintln(w, fig.Render())
		if err := writeCSV(out, fmt.Sprintf("fig5-%s", experiment.VMSizes()[i].Name), fig.Table(), w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, experiment.RenderTable3(figs).String())
	return writeCSV(out, "table3", experiment.RenderTable3(figs), w)
}

func runFig6(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Figure 6 + Table 4: phoronix-fio ==")
	fig, err := experiment.RunFig6(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, fig.Render())
	fmt.Fprintln(w, fig.Table().String())
	fmt.Fprintln(w, experiment.RenderTable4(fig).String())
	if err := writeCSV(out, "fig6", fig.Table(), w); err != nil {
		return err
	}
	return writeCSV(out, "table4", experiment.RenderTable4(fig), w)
}

func runCrossover(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== §3.3 crossover sweep: to tick or not to tick ==")
	res, err := experiment.RunCrossover(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Render())
	return writeCSV(out, "crossover", res.Table(), w)
}

func runConsolidation(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== §3.1 consolidation: mixed fleet, 2:1 overcommit ==")
	res, err := experiment.RunConsolidation(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Render())
	return nil
}

func runOvercommit(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Overcommit sweep: 1:1→4:1, fifo vs fair host scheduling ==")
	res, err := experiment.RunOvercommit(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Render())
	return writeCSV(out, "overcommit", res.Table(), w)
}

func runAblation(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Ablations ==")
	s, err := experiment.RunAllAblations(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, s)
	return nil
}

// shardFleetVMs is the fleet size -run shardfleet simulates: four
// socket-contained VMs per socket of the paper topology.
const shardFleetVMs = 16

func runShardFleet(opts experiment.Options, out string, w io.Writer) error {
	fmt.Fprintln(w, "== Shard fleet: lane-mode determinism workload ==")
	res, err := experiment.RunShardFleet(opts, shardFleetVMs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, res.Render())
	return nil
}
