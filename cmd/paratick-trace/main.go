// Command paratick-trace runs a scenario with event tracing enabled and
// prints a perf-style summary of VM exits and injections, optionally
// followed by the tail of the raw event stream.
//
// Usage:
//
//	paratick-trace [-mode paratick] [-vcpus 1] [-workload fio:rndr:4:4]
//	               [-events 0] [-buffer 4096] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"paratick"
)

func main() {
	mode := flag.String("mode", "paratick", "tick mode: dynticks, periodic, paratick")
	vcpus := flag.Int("vcpus", 1, "vCPU count")
	wl := flag.String("workload", "fio:rndr:4:4", "workload spec (see paratick-sim -help)")
	events := flag.Int("events", 0, "print the last N raw trace events")
	buffer := flag.Int("buffer", 4096, "trace ring capacity")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	m, err := paratick.ParseTickMode(*mode)
	if err != nil {
		fatal(err)
	}
	workload, err := paratick.ParseWorkloadSpec(*wl, 0)
	if err != nil {
		fatal(err)
	}
	rep, err := paratick.Run(paratick.Scenario{
		Mode:          m,
		VCPUs:         *vcpus,
		Seed:          *seed,
		Workload:      workload,
		TraceCapacity: *buffer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Summary())
	fmt.Println()
	fmt.Print(rep.Trace.Summary())
	if *events > 0 {
		evs := rep.Trace.Events()
		if len(evs) > *events {
			evs = evs[len(evs)-*events:]
		}
		fmt.Println()
		for _, e := range evs {
			fmt.Println(e.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paratick-trace:", err)
	os.Exit(1)
}
