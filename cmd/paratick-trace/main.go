// Command paratick-trace runs a scenario with event tracing enabled and
// prints a perf-style summary of VM exits and injections, optionally
// followed by the tail of the raw event stream.
//
// With -trace-out FILE.json the recorded events are additionally exported
// as Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing with one track per pCPU/vCPU.
//
// Usage:
//
//	paratick-trace [-mode paratick] [-vcpus 1] [-workload fio:rndr:4:4]
//	               [-overcommit 1] [-sched fifo|fair] [-events 0]
//	               [-buffer 4096] [-seed 1] [-trace-out FILE.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paratick"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paratick-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paratick-trace", flag.ContinueOnError)
	mode := fs.String("mode", "paratick", "tick mode: dynticks, periodic, paratick")
	vcpus := fs.Int("vcpus", 1, "vCPU count")
	overcommit := fs.Int("overcommit", 1, "vCPUs per physical CPU")
	schedPolicy := fs.String("sched", "fifo", "host vCPU scheduler: fifo, fair")
	wl := fs.String("workload", "fio:rndr:4:4", "workload spec (see paratick-sim -help)")
	events := fs.Int("events", 0, "print the last N raw trace events")
	buffer := fs.Int("buffer", 4096, "trace ring capacity")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	traceOut := fs.String("trace-out", "", "file for Chrome trace-event JSON (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := paratick.ParseTickMode(*mode)
	if err != nil {
		return err
	}
	pol, err := paratick.ParseSchedPolicy(*schedPolicy)
	if err != nil {
		return err
	}
	workload, err := paratick.ParseWorkloadSpec(*wl, 0)
	if err != nil {
		return err
	}
	rep, err := paratick.Run(paratick.Scenario{
		Mode:          m,
		VCPUs:         *vcpus,
		Overcommit:    *overcommit,
		Sched:         pol,
		Seed:          *seed,
		Workload:      workload,
		TraceCapacity: *buffer,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.Summary())
	fmt.Fprintln(w)
	fmt.Fprint(w, rep.Trace.Summary())
	if *events > 0 {
		evs := rep.Trace.Events()
		if len(evs) > *events {
			evs = evs[len(evs)-*events:]
		}
		fmt.Fprintln(w)
		for _, e := range evs {
			fmt.Fprintln(w, e.String())
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := rep.Trace.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *traceOut)
	}
	return nil
}
