package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workload", "fio:rndr:4:1", "-events", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"VM exits", "trace:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceOutWritesValidChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var b strings.Builder
	if err := run([]string{"-workload", "fio:rndr:4:1", "-trace-out", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

func TestRunBadMode(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "bogus"}, &b); err == nil {
		t.Error("bogus mode accepted")
	}
}
