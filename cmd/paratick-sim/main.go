// Command paratick-sim runs a single scenario — one VM, one workload, one
// tick mode — and prints its report, optionally comparing against the
// dynticks baseline.
//
// Usage:
//
//	paratick-sim [-mode dynticks|periodic|paratick] [-vcpus N] [-sockets N]
//	             [-workload SPEC] [-duration 1s] [-seed 1] [-compare]
//	             [-guest-hz 250] [-host-hz 250] [-haltpoll 0]
//	             [-overcommit N] [-sched fifo|fair] [-timeslice 6ms]
//
// Workload specs:
//
//	parsec-seq:NAME          sequential PARSEC benchmark (e.g. dedup)
//	parsec-par:NAME:THREADS  multithreaded PARSEC benchmark
//	fio:PATTERN:BSKB:MB      fio job, e.g. fio:rndr:4:64
//	sync:THREADS:RATE        §3.3 blocking-sync microbenchmark
//	idle                     no tasks (requires -duration)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paratick"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paratick-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("paratick-sim", flag.ContinueOnError)
	mode := fs.String("mode", "paratick", "tick mode: dynticks, periodic, paratick")
	vcpus := fs.Int("vcpus", 1, "vCPU count")
	sockets := fs.Int("sockets", 1, "NUMA sockets to spread vCPUs over")
	wl := fs.String("workload", "fio:rndr:4:16", "workload spec (see -help)")
	duration := fs.Duration("duration", 0, "fixed run duration (for idle workloads)")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	guestHz := fs.Int("guest-hz", 250, "guest tick frequency")
	hostHz := fs.Int("host-hz", 250, "host tick frequency")
	haltPoll := fs.Duration("haltpoll", 0, "KVM halt-polling window (0 = disabled, as in the paper)")
	pleWindow := fs.Duration("ple", 0, "pause-loop-exiting window (0 = disabled, as in the paper)")
	spin := fs.Duration("spin", 0, "adaptive lock spin before blocking (0 = pure blocking sync)")
	overcommit := fs.Int("overcommit", 1, "vCPUs per physical CPU")
	schedPolicy := fs.String("sched", "fifo", "host vCPU scheduler: fifo, fair")
	timeslice := fs.Duration("timeslice", 0, "host pCPU timeslice (0 = 6ms default)")
	topUp := fs.Bool("topup", false, "enable the §4.1 frequency-mismatch top-up timer")
	disarm := fs.Bool("disarm-on-idle-exit", false, "invert the §5.2.5 heuristic (ablation)")
	compare := fs.Bool("compare", false, "also run the dynticks baseline and print the comparison")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := paratick.ParseTickMode(*mode)
	if err != nil {
		return err
	}
	pol, err := paratick.ParseSchedPolicy(*schedPolicy)
	if err != nil {
		return err
	}
	workload, err := paratick.ParseWorkloadSpec(*wl, *duration)
	if err != nil {
		return err
	}
	if *wl == "idle" && *duration <= 0 {
		return fmt.Errorf("idle workload requires -duration")
	}
	s := paratick.Scenario{
		Mode:             m,
		VCPUs:            *vcpus,
		Sockets:          *sockets,
		Overcommit:       *overcommit,
		Sched:            pol,
		Timeslice:        *timeslice,
		GuestHz:          *guestHz,
		HostHz:           *hostHz,
		Seed:             *seed,
		Duration:         *duration,
		HaltPoll:         *haltPoll,
		PLEWindow:        *pleWindow,
		AdaptiveSpin:     *spin,
		TopUpTimer:       *topUp,
		DisarmOnIdleExit: *disarm,
		Workload:         workload,
	}
	if *compare {
		cmp, err := paratick.CompareToBaseline(s)
		if err != nil {
			return err
		}
		fmt.Fprint(w, cmp.Summary())
		return nil
	}
	rep, err := paratick.Run(s)
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.Summary())
	return nil
}
