package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workload", "fio:rndr:4:1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"VM exits", "exit handling cost", "p50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareSmoke(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workload", "fio:rndr:4:1", "-compare"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "paratick vs dynticks") {
		t.Fatalf("comparison header missing:\n%s", b.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "bogus"}, &b); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run([]string{"-workload", "idle"}, &b); err == nil {
		t.Error("idle without duration accepted")
	}
	if err := run([]string{"-workload", "nonsense:spec"}, &b); err == nil {
		t.Error("bad workload spec accepted")
	}
}
