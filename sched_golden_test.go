package paratick

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenScenarios are fixed-seed runs whose Report.Summary output is pinned
// in testdata/. They were captured before the scheduler extraction, so they
// prove the default FIFO policy is behaviour-preserving bit for bit — the
// overcommitted ones exercise run-queue rotation, timeslice expiry, and
// timer-steal exits, exactly the paths the scheduler refactor touched.
func goldenScenarios(t *testing.T) map[string]Scenario {
	t.Helper()
	fio, err := ParseWorkloadSpec("fio:rndr:4:2", 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Scenario{
		"fio-paratick": {
			Mode:     ModeParatick,
			VCPUs:    1,
			Seed:     7,
			Workload: fio,
		},
		"sync-overcommit2-dynticks": {
			Mode:       ModeDynticks,
			VCPUs:      4,
			Overcommit: 2,
			Seed:       7,
			Workload:   SyncWorkload(4, 2000, 80*time.Millisecond),
		},
		"sync-overcommit4-paratick": {
			Mode:       ModeParatick,
			VCPUs:      4,
			Overcommit: 4,
			Seed:       7,
			Workload:   SyncWorkload(4, 2000, 80*time.Millisecond),
		},
		"parsec-overcommit2-periodic": {
			Mode:       ModePeriodic,
			VCPUs:      2,
			Overcommit: 2,
			Seed:       7,
			Workload:   ParsecParallelScaled("dedup", 2, 0.02),
		},
	}
}

// TestFIFOGoldenSummaries asserts that the default scheduling policy
// reproduces the pre-refactor runs byte for byte.
func TestFIFOGoldenSummaries(t *testing.T) {
	for name, s := range goldenScenarios(t) {
		t.Run(name, func(t *testing.T) {
			rep, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			got := rep.Summary()
			path := filepath.Join("testdata", "golden-"+name+".txt")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("summary diverges from pre-refactor golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
